package aquago

import (
	"context"
	"math"

	"aquago/internal/mac"
)

// This file is the network's conflict-graph exchange scheduler.
//
// PR 2 serialized every Node.Send under one network-wide lock: correct,
// but one exchange at a time regardless of geometry, wasting the
// multi-core experiment substrate. The scheduler replaces that critical
// section with per-attempt *tickets* ordered by a monotonic grant
// sequence. Two tickets conflict when their exchanges could interact —
// they share a node, or (with a finite carrier-sense range) any
// cross-pair distance is within that range, which bounds both carrier
// sense and waveform audibility. A ticket runs its exchange only after
// every conflicting earlier ticket has resolved (committed or aborted),
// so:
//
//   - conflicting exchanges execute in deterministic grant order: the
//     carrier sense each grant consults, and (in waveform mode) the
//     interference each receive window hears, are exactly the committed
//     traffic of its predecessors, independent of worker count;
//   - non-conflicting exchanges hold no common state — disjoint link
//     objects, mutually inaudible waves, untouched scoped frontiers —
//     and run concurrently on the worker slots.
//
// Admission is sharded spatially. A ticket's conflict edges are
// computed once, at registration: every unresolved earlier ticket is
// tested against it (a shared node, or any cross-pair distance within
// the carrier-sense range) and the edges are recorded both ways — the
// earlier ticket remembers whom it blocks, the later one counts how
// many grants it still waits for. A waiting ticket parks on its own
// ready channel, closed exactly when its last blocking predecessor
// resolves, so a resolution wakes only the tickets it actually
// unblocks: distant pods admit grants without ever signalling — or
// being woken by — each other, where a single network-wide condition
// variable used to broadcast every resolution to every waiter and
// have each re-scan the whole unresolved set.
//
// Virtual-time causality, formerly one global commit frontier, is now
// scoped per node: a grant at start s pushes the frontier of every node
// that could have heard it (within carrier-sense range — the spatial
// grid's audibility adjacency, not a scan of all nodes) to s + one
// sense interval, so a later send on such a node can never start in the
// already-simulated past — while an out-of-range node's timeline is
// left alone, as real acoustics would. The envelope log is pruned at
// the *minimum* horizon any node could still poll or transmit at
// (lagging idle nodes and granted-but-uncommitted attempts pin it), so
// a transmission is never dropped while some node could yet hear it
// busy or collide with it.

// ticket is one granted-or-pending transmission attempt in the
// scheduler. All fields are guarded by Network.mu except ready, which
// is closed under mu and received from outside it.
type ticket struct {
	seq     uint64
	tx, rx  int
	granted bool
	startS  float64
	done    bool
	// waits counts unresolved earlier conflicting tickets; the
	// attempt may run once it reaches zero. blocks lists the later
	// tickets this one must wake on resolution — the precomputed
	// conflict edge list, fixed at registration (tickets with smaller
	// sequence numbers all exist by then, so the edge set is complete).
	waits  int
	blocks []*ticket
	// ready is closed when waits reaches zero (at registration for a
	// conflict-free ticket).
	ready chan struct{}
}

// pruneEvery throttles the envelope/wave log prune: the minimum-bound
// scan is O(nodes), so running it once per admitted batch instead of
// once per attempt keeps admission O(conflict degree) at thousands of
// nodes. Prune only ever drops provably inert transmissions, so the
// schedule of pruning cannot change any result — only peak memory.
const pruneEvery = 32

// SchedulerStats reports what the conflict-graph scheduler has done so
// far — primarily how much exchange-level parallelism geometry allowed.
type SchedulerStats struct {
	// Granted counts MAC-granted transmission attempts.
	Granted int
	// Committed counts attempts that completed their exchange and were
	// registered on the envelope medium (Granted minus aborts).
	Committed int
	// AirtimeS totals the committed attempts' actual on-air time in
	// virtual seconds (per-attempt airtime is available through
	// WithExchangeProbe); AirtimeS over elapsed virtual time is the
	// offered channel utilization.
	AirtimeS float64
	// ConflictEdges counts the blocking edges the admission gate
	// recorded between coexisting tickets — the serialization the
	// geometry actually demanded. Like MaxConcurrent it is a
	// wall-clock observation (it depends on which attempts happened to
	// coexist), so it is not deterministic run to run.
	ConflictEdges int
	// MaxConcurrent is the peak number of exchanges that were running
	// simultaneously on worker slots. Unlike the counters above it is a
	// wall-clock observation: it depends on how exchanges happened to
	// overlap in real time, so it is not deterministic run to run.
	MaxConcurrent int
	// Workers is the worker-slot budget the network resolved
	// (WithNetworkWorkers; 0 resolves to one per CPU core).
	Workers int
}

// SchedulerStats returns the scheduler counters.
func (n *Network) SchedulerStats() SchedulerStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.stats
	st.Workers = cap(n.sem)
	return st
}

// interferes reports whether exchanges on pairs (a1, b1) and (a2, b2)
// could interact: a shared node always conflicts; otherwise, with an
// unlimited carrier-sense range every pair conflicts, and with a finite
// range only pairs with some cross distance within it do. Callers hold
// n.mu.
func (n *Network) interferes(a1, b1, a2, b2 int) bool {
	if a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2 {
		return true
	}
	r := n.cfg.csRangeM
	if r <= 0 {
		return true
	}
	p := func(i int) Position { return n.order[i].pos }
	for _, x := range [2]int{a1, b1} {
		for _, y := range [2]int{a2, b2} {
			if p(x).DistanceTo(p(y)) <= r {
				return true
			}
		}
	}
	return false
}

// registerTicketLocked creates the next-sequence ticket for an
// exchange on (tx, rx) and records its conflict edges against every
// unresolved ticket — all earlier, since the sequence is handed out
// here. The edge list never needs recomputing: later tickets register
// their own edges, and resolution only removes them.
func (n *Network) registerTicketLocked(tx, rx int) *ticket {
	tk := &ticket{seq: n.gateSeq, tx: tx, rx: rx, ready: make(chan struct{})}
	n.gateSeq++
	for _, u := range n.tickets {
		if n.interferes(u.tx, u.rx, tk.tx, tk.rx) {
			u.blocks = append(u.blocks, tk)
			tk.waits++
			n.stats.ConflictEdges++
		}
	}
	n.tickets = append(n.tickets, tk)
	if tk.waits == 0 {
		close(tk.ready)
	}
	return tk
}

// rewireTicketsLocked recomputes the conflict edges of coexisting
// tickets after node moved's position epoch: every unresolved ticket
// pair with the mover at an endpoint is re-tested against interferes
// at the new geometry, gaining the edge it now needs or dropping the
// one it no longer does (waking the blocked ticket when that was its
// last). Pairs not touching the mover keep their distances and their
// edges.
//
// Admission is monotone: a ticket whose ready channel already closed
// keeps its admission even if the move creates a conflict with an
// earlier ticket — a closed channel cannot re-arm, and its waiter may
// already be past the gate. That is the honest semantics of moving
// while exchanges are in flight (a radio cannot un-hear a grant), and
// it is never exercised at quiescent points — move between transfers
// and every coexisting ticket set is empty. n.tickets holds only
// unresolved tickets in ascending sequence order, so the scan is a
// pure function of ticket state and geometry. Callers hold n.mu.
func (n *Network) rewireTicketsLocked(moved int) {
	for ui, u := range n.tickets {
		for _, t := range n.tickets[ui+1:] {
			if u.tx != moved && u.rx != moved && t.tx != moved && t.rx != moved {
				continue
			}
			want := n.interferes(u.tx, u.rx, t.tx, t.rx)
			has := -1
			for i, b := range u.blocks {
				if b == t {
					has = i
					break
				}
			}
			switch {
			case want && has < 0 && t.waits > 0:
				// A new conflict — but only for tickets still parked
				// (waits > 0): an admitted ticket's ready channel is
				// closed and cannot block again (see above).
				u.blocks = append(u.blocks, t)
				t.waits++
				n.stats.ConflictEdges++
			case !want && has >= 0:
				u.blocks = append(u.blocks[:has], u.blocks[has+1:]...)
				t.waits--
				if t.waits == 0 {
					close(t.ready)
				}
			}
		}
	}
}

// resolveLocked removes tk from the unresolved set and wakes exactly
// the tickets its resolution unblocks.
func (n *Network) resolveLocked(tk *ticket) {
	tk.done = true
	for i, u := range n.tickets {
		if u == tk {
			n.tickets = append(n.tickets[:i], n.tickets[i+1:]...)
			break
		}
	}
	for _, b := range tk.blocks {
		if b.done {
			continue // abandoned while waiting (context cancelled)
		}
		b.waits--
		if b.waits == 0 {
			close(b.ready)
		}
	}
	tk.blocks = nil
}

// bumpFrontierLocked advances the scoped commit frontier of every node
// that could have heard a transmission from node x: its next attempt
// may not start before fS. The audibility adjacency bounds the walk to
// x's spatial neighborhood.
func (n *Network) bumpFrontierLocked(x int, fS float64) {
	if fS > n.frontier[x] {
		n.frontier[x] = fS
	}
	n.forEachAudibleLocked(x, func(idx int) {
		if fS > n.frontier[idx] {
			n.frontier[idx] = fS
		}
	})
}

// nodeBoundsLocked returns, per node index, the earliest virtual time
// that node could still open a receive window, poll carrier sense, or
// start a transmission at: max(own clock, scoped frontier), pinned by
// granted-but-uncommitted attempts (both endpoints of an attempt open
// windows from its start).
func (n *Network) nodeBoundsLocked() []float64 {
	bounds := make([]float64, len(n.order))
	for i, nd := range n.order {
		b := nd.clockS
		if f := n.frontier[i]; f > b {
			b = f
		}
		bounds[i] = b
	}
	for _, tk := range n.tickets {
		if !tk.granted {
			continue
		}
		if tk.startS < bounds[tk.tx] {
			bounds[tk.tx] = tk.startS
		}
		if tk.startS < bounds[tk.rx] {
			bounds[tk.rx] = tk.startS
		}
	}
	return bounds
}

// pruneLocked folds the envelope ledger and drops stale wave-bank
// samples at the global minimum bound. Both logs must use the global
// minimum: collision accounting is range-independent (any node still
// at a low virtual time may yet overlap old packets), and a wave's
// audibility window is opened by *transmitters* — any lagging node may
// address an in-range receiver of the wave, whose windows then sit in
// that receiver's virtual past. A deliberately idle, out-of-range node
// therefore pins both ledgers until it advances (sends, or hears an
// in-range grant); that is the honest cost of scoped timelines, and it
// clears the moment the laggard participates. Under the common
// configurations — unlimited carrier-sense range, or islands whose
// nodes all carry traffic — every bound advances and both logs stay
// bounded.
func (n *Network) pruneLocked() {
	if len(n.order) == 0 {
		return
	}
	horizon := math.Inf(1)
	for _, b := range n.nodeBoundsLocked() {
		if b < horizon {
			horizon = b
		}
	}
	if math.IsInf(horizon, 1) {
		return
	}
	n.med.Prune(horizon, n.wcAirtimeS)
	if n.bank != nil {
		n.bank.Prune(horizon)
	}
}

// maybePruneLocked amortizes pruneLocked across admissions (see
// pruneEvery).
func (n *Network) maybePruneLocked() {
	n.sincePrune++
	if n.sincePrune < pruneEvery {
		return
	}
	n.sincePrune = 0
	n.pruneLocked()
}

// beginAttempt is the per-attempt gate: it registers a ticket with its
// precomputed conflict edges, parks on the ticket's own ready channel
// until every conflicting earlier attempt has resolved (distant
// attempts share no edges and never wake each other), bumps the
// attempt past the node's scoped frontier, prunes the logs, runs the
// carrier-sense MAC, and — once granted — claims a worker slot. On
// success the caller MUST later resolve the ticket through
// commitAttempt or abortAttempt.
func (n *Network) beginAttempt(ctx context.Context, nd *Node, peer int, readyS float64) (*ticket, float64, error) {
	n.mu.Lock()
	tk := n.registerTicketLocked(nd.idx, peer)
	n.mu.Unlock()

	select {
	case <-tk.ready:
	case <-ctx.Done():
		n.mu.Lock()
		if !tk.done {
			n.resolveLocked(tk)
		}
		n.mu.Unlock()
		return nil, 0, ctx.Err()
	}

	n.mu.Lock()
	if err := ctx.Err(); err != nil {
		n.resolveLocked(tk)
		n.mu.Unlock()
		return nil, 0, err
	}
	if f := n.frontier[nd.idx]; readyS < f {
		readyS = f
	}
	n.maybePruneLocked()
	// The backoff quantum: the worst-case full-band airtime by
	// default, the last committed attempt's actual (adapted-band)
	// airtime under WithAdaptiveBackoff — a node that just ran on a
	// wide band serves proportionally shorter backoffs.
	quantum := nd.airtimeS
	if n.cfg.adaptiveBackoff && nd.adaptAirtimeS > 0 {
		quantum = nd.adaptAirtimeS
	}
	start, granted := nd.cont.Acquire(func(tS float64) bool {
		return n.med.BusyAt(nd.idx, tS)
	}, readyS, quantum, n.cfg.accessDeadlineS)
	if !granted {
		n.resolveLocked(tk)
		n.mu.Unlock()
		return nil, 0, &ChannelBusyError{BusyUntilS: start, DeadlineS: n.cfg.accessDeadlineS}
	}
	tk.granted, tk.startS = true, start
	n.stats.Granted++
	n.bumpFrontierLocked(nd.idx, start+mac.SenseIntervalS)
	n.mu.Unlock()

	// Claim a worker slot outside the lock so running exchanges can
	// commit (and conflicting gates can wait) meanwhile. A cancelled
	// context abandons the granted attempt before it goes on the air.
	select {
	case n.sem <- struct{}{}:
	case <-ctx.Done():
		n.mu.Lock()
		n.resolveLocked(tk)
		n.mu.Unlock()
		return nil, 0, ctx.Err()
	}
	n.mu.Lock()
	n.running++
	if n.running > n.stats.MaxConcurrent {
		n.stats.MaxConcurrent = n.running
	}
	n.mu.Unlock()
	return tk, start, nil
}

// commitAttempt registers a finished attempt with the envelope medium
// (actual on-air duration, the node's sensing model) and resolves its
// ticket, releasing the worker slot.
func (n *Network) commitAttempt(nd *Node, tk *ticket, startS, durS float64) {
	n.mu.Lock()
	n.med.Transmit(nd.cont.Transmission(nd.idx, startS, durS, nd.seq))
	nd.seq++
	nd.adaptAirtimeS = durS
	n.stats.Committed++
	n.stats.AirtimeS += durS
	rxID := n.order[tk.rx].id
	n.running--
	n.resolveLocked(tk)
	n.mu.Unlock()
	if probe := n.cfg.exchangeProbe; probe != nil {
		// Outside n.mu (the probe must not block virtual-time
		// bookkeeping) but under traceMu: commits of non-interfering
		// exchanges can race, and probes are promised serial delivery.
		n.traceMu.Lock()
		//aqualint:callback-under-lock WithExchangeProbe documents the hook as serialized, quick, and never re-entering the network; traceMu is the leaf of the lock order and n.mu is already released here
		probe(ExchangeEvent{Tx: nd.id, Rx: rxID, StartS: startS, AirtimeS: durS})
		n.traceMu.Unlock()
	}
	<-n.sem
}

// abortAttempt resolves a granted ticket whose exchange never
// completed (protocol error mid-exchange), releasing the worker slot.
func (n *Network) abortAttempt(tk *ticket) {
	n.mu.Lock()
	n.running--
	n.resolveLocked(tk)
	n.mu.Unlock()
	<-n.sem
}
