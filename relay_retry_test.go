package aquago_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"aquago"
)

// buildLossyLine joins a 3-hop line whose middle hop is stretched to
// 76 m — inside the Bridge channel's marginal band, where individual
// attempts genuinely fail and a retransmission can genuinely succeed.
// The outer hops stay at the comfortable 25 m.
func buildLossyLine(t *testing.T, seed int64, opts ...aquago.NetworkOption) (*aquago.Network, []aquago.DeviceID) {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		append([]aquago.NetworkOption{
			aquago.WithNetworkSeed(seed),
			aquago.WithCSRange(110),
		}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	path := make([]aquago.DeviceID, 0, 4)
	for i, x := range []float64{0, 25, 101, 126} {
		if _, err := net.Join(aquago.DeviceID(i), aquago.Position{X: x, Z: 1}, aquago.WithNodeClock(0)); err != nil {
			t.Fatal(err)
		}
		path = append(path, aquago.DeviceID(i))
	}
	return net, path
}

// TestRelayRetryRecoversLossyHop is the headline bugfix scenario: on
// a line with one marginal hop, a transfer with no retry budget dies
// partway — one lost packet kills the whole transfer — while the
// default per-packet budget re-enters the MAC with backoff and
// delivers 100%, sequentially and pipelined. Seeds are pinned from a
// scan of the deterministic channel; both halves are asserted so the
// scenario keeps its teeth.
func TestRelayRetryRecoversLossyHop(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four bulk transfers over a marginal hop")
	}
	payload := []byte("progressive image!") // 18 bytes -> 9 packets
	for _, seed := range []int64{14, 24} {
		for _, pipelined := range []bool{false, true} {
			send := func(net *aquago.Network, path []aquago.DeviceID) (aquago.BulkResult, error) {
				if pipelined {
					return net.SendBulkViaPipelined(context.Background(), path, payload)
				}
				return net.SendBulkVia(context.Background(), path, payload)
			}

			// Without a retry budget: the marginal hop's first bad attempt
			// aborts everything after it.
			net0, path := buildLossyLine(t, seed, aquago.WithBulkRetries(0))
			res0, err0 := send(net0, path)
			if err0 == nil {
				t.Fatalf("seed %d pipelined=%v: transfer with no retry budget survived the marginal hop (%+v) — scenario lost its teeth",
					seed, pipelined, res0)
			}
			var hopErr *aquago.RelayError
			if !errors.As(err0, &hopErr) {
				t.Fatalf("seed %d pipelined=%v: failure %v does not carry *RelayError", seed, pipelined, err0)
			}
			if !errors.Is(err0, aquago.ErrNoACK) && !errors.Is(err0, aquago.ErrChannelBusy) {
				t.Fatalf("seed %d pipelined=%v: marginal hop failed for a non-transient cause: %v", seed, pipelined, err0)
			}
			if res0.DeliveredPackets == res0.Packets {
				t.Fatalf("seed %d pipelined=%v: failed transfer claims full delivery: %+v", seed, pipelined, res0)
			}
			if res0.Retries != 0 {
				t.Fatalf("seed %d pipelined=%v: zero-budget transfer spent %d retries", seed, pipelined, res0.Retries)
			}

			// With the default budget: the same channel realization
			// delivers everything, and the retries that saved it are
			// accounted.
			net2, path := buildLossyLine(t, seed)
			res2, err2 := send(net2, path)
			if err2 != nil {
				t.Fatalf("seed %d pipelined=%v: default retry budget still failed: %v (%+v)", seed, pipelined, err2, res2)
			}
			if !bytes.Equal(res2.Received, payload) {
				t.Fatalf("seed %d pipelined=%v: payload not conserved: %q", seed, pipelined, res2.Received)
			}
			if res2.DeliveredPackets != res2.Packets || res2.DeliveredBytes != len(payload) {
				t.Fatalf("seed %d pipelined=%v: delivery accounting wrong: %+v", seed, pipelined, res2)
			}
			if res2.Retries == 0 {
				t.Fatalf("seed %d pipelined=%v: recovery spent no retries — the hop was not actually lossy", seed, pipelined)
			}
			if len(res2.PacketEndS) != res2.Packets {
				t.Fatalf("seed %d pipelined=%v: per-packet arrival trace has %d entries, want %d",
					seed, pipelined, len(res2.PacketEndS), res2.Packets)
			}
			for i, at := range res2.PacketEndS {
				if !(at > 0) || at > res2.EndS {
					t.Fatalf("seed %d pipelined=%v: packet %d arrival %g outside the transfer window (end %g)",
						seed, pipelined, i, at, res2.EndS)
				}
				// Sequential transfers complete packets strictly in order;
				// a pipelined one may finish packet k+1 first while packet
				// k retransmits on an earlier hop.
				if !pipelined && i > 0 && at < res2.PacketEndS[i-1] {
					t.Fatalf("seed %d: sequential packet arrivals out of order: %v", seed, res2.PacketEndS)
				}
			}
		}
	}
}

// TestRelayPipelinedFailureContiguousPrefix pins the pipelined
// failure contract: when a transfer dies mid-path, Received must be a
// contiguous prefix of the payload and DeliveredBytes must count
// exactly those bytes — packets that cleared early hops but never
// reached the destination, and packets behind the failure, are
// excluded even though the pipeline had them in flight.
func TestRelayPipelinedFailureContiguousPrefix(t *testing.T) {
	payload := []byte("progressive image!") // 9 packets
	// Seeds scanned for mid-transfer deaths: some packets delivered end
	// to end, then the marginal hop exhausts a packet's budget.
	for _, tc := range []struct {
		seed    int64
		retries int
	}{
		{5, 0},
		{21, 2},
		{22, 2},
	} {
		net, path := buildLossyLine(t, tc.seed, aquago.WithBulkRetries(tc.retries))
		res, err := net.SendBulkViaPipelined(context.Background(), path, payload)
		if err == nil {
			t.Fatalf("seed %d retries %d: expected a mid-transfer death, got %+v", tc.seed, tc.retries, res)
		}
		var hopErr *aquago.RelayError
		if !errors.As(err, &hopErr) {
			t.Fatalf("seed %d: failure %v does not carry *RelayError", tc.seed, err)
		}
		if res.DeliveredPackets >= res.Packets {
			t.Fatalf("seed %d: failed transfer claims full delivery: %+v", tc.seed, res)
		}
		want := payload[:res.DeliveredBytes]
		if !bytes.Equal(res.Received, want) {
			t.Fatalf("seed %d: Received is not the contiguous payload prefix:\nwant %q\ngot  %q", tc.seed, want, res.Received)
		}
		if res.DeliveredBytes != 2*res.DeliveredPackets && res.DeliveredBytes != 2*res.DeliveredPackets-1 {
			t.Fatalf("seed %d: DeliveredBytes %d inconsistent with %d delivered packets", tc.seed, res.DeliveredBytes, res.DeliveredPackets)
		}
		if len(res.Bands) != res.DeliveredPackets || len(res.PacketEndS) != res.DeliveredPackets {
			t.Fatalf("seed %d: per-packet traces sized %d/%d, want %d", tc.seed, len(res.Bands), len(res.PacketEndS), res.DeliveredPackets)
		}
		if hopErr.Pkt < res.DeliveredPackets {
			t.Fatalf("seed %d: failure attributed to packet %d, but %d packets were delivered end to end",
				tc.seed, hopErr.Pkt, res.DeliveredPackets)
		}
	}
}

// TestRelayRetryBudgetValidation: the network refuses a negative
// budget at construction, and WithBulkRetries(0) restores the
// fail-fast behavior (a transfer over a dead hop spends no retries).
func TestRelayRetryBudgetValidation(t *testing.T) {
	if _, err := aquago.NewNetwork(aquago.Bridge, aquago.WithBulkRetries(-1)); err == nil {
		t.Fatal("negative bulk retry budget accepted")
	}
	// A dead hop (600 m) is not retryable in practice: even the default
	// budget must give up after spending it, reporting honest counts.
	net, err := aquago.NewNetwork(aquago.Bridge, aquago.WithNetworkSeed(3), aquago.WithNetworkRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, pos := range []aquago.Position{{X: 0, Z: 1}, {X: 25, Z: 1}, {X: 625, Z: 1}} {
		if _, err := net.Join(aquago.DeviceID(i), pos, aquago.WithNodeClock(0)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := net.SendBulkVia(context.Background(), []aquago.DeviceID{0, 1, 2}, []byte("hi"))
	if err == nil {
		t.Fatalf("600 m hop delivered: %+v", res)
	}
	if res.Retries != aquago.DefaultBulkRetries {
		t.Fatalf("dead hop spent %d retries, want the full default budget %d", res.Retries, aquago.DefaultBulkRetries)
	}
}
