package aquago

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the scaled hot paths: ticket admission and route
// builds at 60, 500 and 2000 nodes. The companion alloc-bound tests
// pin that per-operation allocation counts stay flat — independent of
// node count — so a regression back to O(N) work per admission shows
// up as a count jump, not just a timing drift.

var benchSizes = []int{60, 500, 2000}

// benchPair draws a deterministic audible pair for admissions.
func benchPair(net *Network, rng *rand.Rand) (int, int) {
	for {
		tx := rng.Intn(len(net.order))
		var rx = -1
		net.mu.Lock()
		net.forEachAudibleLocked(tx, func(j int) {
			if rx < 0 {
				rx = j
			}
		})
		net.mu.Unlock()
		if rx >= 0 {
			return tx, rx
		}
	}
}

func BenchmarkSchedulerAdmission(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			net := scatterNetwork(b, n, 30, 17)
			rng := rand.New(rand.NewSource(23))
			tx, rx := benchPair(net, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.mu.Lock()
				tk := net.registerTicketLocked(tx, rx)
				net.resolveLocked(tk)
				net.mu.Unlock()
			}
		})
	}
}

func BenchmarkRouteBuild(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			net := scatterNetwork(b, n, 30, 17)
			rng := rand.New(rand.NewSource(29))
			src, dst := benchPair(net, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.mu.Lock()
				net.routeCache = nil // force a fresh build
				_, err := net.routeLocked(src, dst)
				net.mu.Unlock()
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAdmissionAllocBound pins the per-admission allocation count at
// 2000 nodes: registering and resolving an uncontended ticket must
// cost a handful of allocations (ticket, channel, slice slack) — not
// anything proportional to the population.
func TestAdmissionAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	net := scatterNetwork(t, 2000, 30, 17)
	rng := rand.New(rand.NewSource(23))
	tx, rx := benchPair(net, rng)
	allocs := testing.AllocsPerRun(200, func() {
		net.mu.Lock()
		tk := net.registerTicketLocked(tx, rx)
		net.resolveLocked(tk)
		net.mu.Unlock()
	})
	if allocs > 16 {
		t.Fatalf("admission costs %.1f allocs at 2000 nodes, want <= 16", allocs)
	}
}

// TestRouteBuildAllocBound pins a route build's allocation count at
// 2000 nodes: a fresh Dijkstra allocates its label arrays and heap —
// a fixed number of objects, not a per-node or per-edge allocation
// pattern.
func TestRouteBuildAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	net := scatterNetwork(t, 2000, 30, 17)
	rng := rand.New(rand.NewSource(29))
	src, dst := benchPair(net, rng)
	allocs := testing.AllocsPerRun(50, func() {
		net.mu.Lock()
		net.routeCache = nil
		if _, err := net.routeLocked(src, dst); err != nil {
			net.mu.Unlock()
			t.Fatal(err)
		}
		net.mu.Unlock()
	})
	if allocs > 200 {
		t.Fatalf("route build costs %.1f allocs at 2000 nodes, want <= 200", allocs)
	}
}
