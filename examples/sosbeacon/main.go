// SOS beacon: a diver in trouble 100 m from shore transmits their
// 6-bit ID with the low-rate FSK beacon; a rescuer's phone picks it
// up despite the distance being far beyond OFDM range (the paper's
// Fig 12d: OFDM dies past ~30 m, 10 bps FSK still decodes at 113 m).
//
//	go run ./examples/sosbeacon
package main

import (
	"fmt"
	"log"

	"aquago"
	"aquago/internal/channel"
)

func main() {
	const diverID = 41
	const distance = 100.0

	fmt.Printf("diver %d transmitting SoS at %g m (beach site)...\n\n", diverID, distance)

	for _, rate := range []int{20, 10, 5} {
		beacon, err := aquago.NewBeacon(rate)
		if err != nil {
			log.Fatal(err)
		}
		tx, err := beacon.EncodeID(diverID)
		if err != nil {
			log.Fatal(err)
		}

		// The long shallow beach channel.
		link, err := channel.NewLink(channel.LinkParams{
			Env:       channel.Beach,
			DistanceM: distance,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		rx := link.Transmit(tx)

		bits, _, ok := beacon.Decode(rx, 6)
		if !ok {
			fmt.Printf("%2d bps: beacon not detected\n", rate)
			continue
		}
		id := 0
		for _, b := range bits {
			id = id<<1 | b
		}
		status := "WRONG ID"
		if id == diverID {
			status = "rescued!"
		}
		airtime := float64(len(tx)) / 48000.0
		fmt.Printf("%2d bps: decoded diver ID %d in %.1f s of audio — %s\n",
			rate, id, airtime, status)
	}
}
