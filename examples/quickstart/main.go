// Quickstart: send "OK?" between two simulated phones 5 m apart in a
// lake, through the full adaptive protocol (preamble, per-subcarrier
// SNR estimation, band adaptation, feedback, data, ACK).
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"aquago"
)

func main() {
	// A lake, two Galaxy S9s at 1 m depth, 5 m apart.
	water, err := aquago.SimulatedWater(aquago.Lake,
		aquago.AtDistance(5),
		aquago.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	// This device is ID 4; the buddy diver is ID 9.
	session, err := aquago.Dial(4)
	if err != nil {
		log.Fatal(err)
	}

	okSignal, _ := aquago.LookupMessage("OK?")
	res, err := session.Send(water, 9, okSignal.ID, aquago.NoMessage)
	switch {
	case errors.Is(err, aquago.ErrNoACK):
		// Retries exhausted without an ACK; res still reports what the
		// attempts achieved.
	case err != nil:
		log.Fatal(err)
	}

	fmt.Printf("message:   %q\n", okSignal.Text)
	fmt.Printf("delivered: %v (attempts: %d, acknowledged: %v)\n",
		res.Delivered, res.Attempts, res.Acknowledged)
	fmt.Printf("band:      subcarriers %d-%d (%.0f-%.0f Hz)\n",
		res.Last.Band.Lo, res.Last.Band.Hi,
		1000+50*float64(res.Last.Band.Lo), 1000+50*float64(res.Last.Band.Hi))
	fmt.Printf("bitrate:   %.0f bps\n", res.Last.BitrateBPS)
}
