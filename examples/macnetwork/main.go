// MAC network: three divers keep messaging one receiver. Without
// carrier sense their packets collide about half the time; with the
// paper's energy-detection MAC (80 ms sensing, packet-quantum random
// backoff) collisions nearly vanish (Fig 19). The example also mixes
// two concurrent transmissions into actual receiver audio to show
// what a collision sounds like to the demodulator.
//
//	go run ./examples/macnetwork
package main

import (
	"fmt"
	"log"

	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/mac"
	"aquago/internal/sim"
)

func main() {
	// Fig 19's deployment: three transmitters 5-10 m from a receiver
	// under the bridge.
	build := func() (*sim.Medium, []int) {
		med := sim.New(channel.Bridge)
		med.AddNode(sim.Position{X: 0, Z: 1}) // receiver
		var tx []int
		for i := 0; i < 3; i++ {
			tx = append(tx, med.AddNode(sim.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1}))
		}
		return med, tx
	}

	fmt.Println("three transmitters, 120 packets each:")
	for _, cs := range []bool{false, true} {
		med, tx := build()
		res := mac.RunNetwork(med, tx, mac.Config{
			CarrierSense: cs,
			PacketsPerTx: 120,
			Seed:         11,
		})
		mode := "without carrier sense"
		if cs {
			mode = "with carrier sense   "
		}
		fmt.Printf("  %s: %5.1f%% of packets collided (%d sent in %.0f s)\n",
			mode, 100*res.CollisionFraction, res.Sent, res.DurationS)
		for _, id := range tx {
			c := res.PerNode[id]
			fmt.Printf("    node %d: %3d/%d collided\n", id, c[0], c[1])
		}
	}

	// What a collision physically is: two packets overlapping in the
	// receiver's ear. Mix two tones through the waveform medium.
	fmt.Println("\nanatomy of a collision (waveform mix at the receiver):")
	w := sim.NewWaveMedium(channel.Bridge, 48000, 5)
	rxNode := w.AddNode(sim.Position{X: 0, Z: 1})
	a := w.AddNode(sim.Position{X: 5, Z: 1})
	b := w.AddNode(sim.Position{X: 8, Z: 1})
	w.TransmitWave(a, 0.010, 0, dsp.Tone(2000, 0.25, 48000))
	w.TransmitWave(b, 0.120, 0, dsp.Tone(3000, 0.25, 48000)) // overlaps
	ear, err := w.ReceiveWindow(rxNode, 0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	during := dsp.BandPower(ear[int(0.15*48000):int(0.25*48000)], 48000, 1000, 4000)
	clear := dsp.BandPower(ear[int(0.42*48000):], 48000, 1000, 4000)
	fmt.Printf("  in-band power during overlap: %.2e, after both end: %.2e (%.0f dB apart)\n",
		during, clear, dsp.DB(during/clear))
	per, frac := w.CollisionStats()
	fmt.Printf("  collision accounting: %.0f%% of packets involved (per node: %v)\n", 100*frac, per)
}
