// MAC network: three divers keep messaging one receiver. Without
// carrier sense their packets collide about half the time; with the
// paper's energy-detection MAC (80 ms sensing, packet-quantum random
// backoff) collisions nearly vanish (Fig 19). Everything runs on the
// public Network API: a batch contention simulation first, then live
// fire-and-forget sends through the per-node transmit queues whose
// protocol stages a Trace observes, and finally a peek under the hood
// at what a collision physically is.
//
//	go run ./examples/macnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"aquago"

	"aquago/internal/channel"
	"aquago/internal/dsp"
	"aquago/internal/sim"
)

func main() {
	// Fig 19's deployment: three transmitters 5-10 m from a receiver
	// under the bridge.
	build := func(opts ...aquago.NetworkOption) (*aquago.Network, []*aquago.Node) {
		net, err := aquago.NewNetwork(aquago.Bridge, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
			log.Fatal(err)
		}
		var tx []*aquago.Node
		for i := 0; i < 3; i++ {
			nd, err := net.Join(aquago.DeviceID(i+1),
				aquago.Position{X: 5 + 2.5*float64(i), Y: float64(i), Z: 1})
			if err != nil {
				log.Fatal(err)
			}
			tx = append(tx, nd)
		}
		return net, tx
	}

	fmt.Println("three transmitters, 120 packets each (batch contention):")
	for _, cs := range []bool{false, true} {
		net, tx := build()
		res := net.SimulateContention(tx, aquago.ContentionConfig{
			CarrierSense: cs,
			PacketsPerTx: 120,
			Seed:         11,
		})
		mode := "without carrier sense"
		if cs {
			mode = "with carrier sense   "
		}
		fmt.Printf("  %s: %5.1f%% of packets collided (%d sent in %.0f s)\n",
			mode, 100*res.CollisionFraction, res.Sent, res.DurationS)
		for _, nd := range tx {
			c := res.PerNode[nd.Index()]
			fmt.Printf("    node %d: %3d/%d collided\n", nd.Index(), c[0], c[1])
		}
	}

	// Live traffic: all three divers hand their message to the async
	// transmit subsystem and move on; each node's transmit daemon runs
	// the MAC on the shared virtual timeline while a trace counts
	// protocol stages. Completions arrive on the network's delivery
	// queue, and Flush waits for the queues to drain.
	var stages atomic.Int64
	net, tx := build(
		aquago.WithNetworkSeed(11),
		aquago.WithNetworkTrace(aquago.TraceFunc(func(aquago.StageEvent) { stages.Add(1) })))
	okMsg, _ := aquago.LookupMessage("OK?")
	deliveries := net.Deliveries()
	for _, nd := range tx {
		if _, err := nd.SendAsync(context.Background(), 0, okMsg.ID); err != nil {
			log.Fatal(err)
		}
	}
	if err := net.Flush(context.Background()); err != nil {
		log.Fatal(err)
	}
	delivered := 0
	for range tx {
		d := <-deliveries
		if d.Err == nil && d.Result.Delivered {
			delivered++
		}
	}
	_, frac := net.CollisionStats()
	fmt.Printf("\nlive queued sends: %d/3 delivered, %.0f%% collided, %d stage events traced\n",
		delivered, 100*frac, stages.Load())

	// What a collision physically is: two packets overlapping in the
	// receiver's ear. This part peeks below the public API at the
	// waveform-mixing medium to show the superposition itself.
	fmt.Println("\nanatomy of a collision (waveform mix at the receiver):")
	w := sim.NewWaveMedium(channel.Bridge, 48000, 5)
	rxNode := w.AddNode(sim.Position{X: 0, Z: 1})
	a := w.AddNode(sim.Position{X: 5, Z: 1})
	b := w.AddNode(sim.Position{X: 8, Z: 1})
	w.TransmitWave(a, 0.010, 0, dsp.Tone(2000, 0.25, 48000))
	w.TransmitWave(b, 0.120, 0, dsp.Tone(3000, 0.25, 48000)) // overlaps
	ear, err := w.ReceiveWindow(rxNode, 0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	during := dsp.BandPower(ear[int(0.15*48000):int(0.25*48000)], 48000, 1000, 4000)
	clear := dsp.BandPower(ear[int(0.42*48000):], 48000, 1000, 4000)
	fmt.Printf("  in-band power during overlap: %.2e, after both end: %.2e (%.0f dB apart)\n",
		during, clear, dsp.DB(during/clear))
	per, frac := w.CollisionStats()
	fmt.Printf("  collision accounting: %.0f%% of packets involved (per node: %v)\n", 100*frac, per)
}
