// Divemessenger: a dive-long conversation between two divers drifting
// around a busy lake, on the public Network API. Each message runs the
// full adaptive protocol over a channel derived from the divers'
// geometry; the channel keeps evolving (the divers are moving), so the
// selected band and bitrate change message to message — the core
// behavior of the paper's Fig 9/12/14. Losses surface as typed errors
// (errors.Is(err, aquago.ErrNoACK)) rather than sentinel strings.
//
//	go run ./examples/divemessenger
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"aquago"
)

// The dive script: a realistic signal exchange, two signals per
// packet where it makes sense.
var script = []struct {
	from, to aquago.DeviceID
	first    string
	second   string
}{
	{1, 2, "OK?", ""},
	{2, 1, "OK!", ""},
	{1, 2, "Follow me", "Go down"},
	{2, 1, "Hold on", "Ears not equalizing"},
	{1, 2, "OK?", ""},
	{2, 1, "OK!", "Go down"},
	{1, 2, "Look - octopus", "Photo opportunity"},
	{2, 1, "Air at half tank", ""},
	{1, 2, "Turn the dive", "Head to the anchor line"},
	{2, 1, "OK!", ""},
	{1, 2, "Safety stop - 3 minutes", ""},
	{2, 1, "OK!", "Good job"},
}

func main() {
	// A busy lake (boats, fishing); both divers move slowly, 8 m
	// apart at 2 m depth. The network derives each direction's channel
	// from this geometry.
	net, err := aquago.NewNetwork(aquago.Lake, aquago.WithNetworkSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	// Join in a fixed order: node indices seed the per-pair channels,
	// so ordering is part of the reproducible realization.
	divers := map[aquago.DeviceID]*aquago.Node{}
	for _, spec := range []struct {
		id  aquago.DeviceID
		pos aquago.Position
	}{
		{1, aquago.Position{X: 0, Z: 2}},
		{2, aquago.Position{X: 8, Z: 2}},
	} {
		d, err := net.Join(spec.id, spec.pos, aquago.WithNodeMotion(aquago.SlowMotion))
		if err != nil {
			log.Fatal(err)
		}
		divers[spec.id] = d
	}

	ctx := context.Background()
	delivered, total := 0, 0
	for _, line := range script {
		first, ok := aquago.LookupMessage(line.first)
		if !ok {
			log.Fatalf("unknown message %q", line.first)
		}
		msgs := []uint8{first.ID}
		label := fmt.Sprintf("%q", line.first)
		if line.second != "" {
			m2, ok := aquago.LookupMessage(line.second)
			if !ok {
				log.Fatalf("unknown message %q", line.second)
			}
			msgs = append(msgs, m2.ID)
			label = fmt.Sprintf("%q + %q", line.first, line.second)
		}
		res, err := divers[line.from].Send(ctx, line.to, msgs...)
		switch {
		case errors.Is(err, aquago.ErrNoACK):
			// The protocol gave up; res still reports the attempts.
		case err != nil:
			log.Fatal(err)
		}
		total++
		status := "LOST"
		if res.Delivered {
			delivered++
			status = "ok"
		}
		retries := ""
		if res.Attempts > 1 {
			retries = fmt.Sprintf(" (%d attempts)", res.Attempts)
		}
		fmt.Printf("diver %d -> %d  %-42s %-4s %4.0f bps, band %2d-%2d%s\n",
			line.from, line.to, label, status,
			res.Last.BitrateBPS, res.Last.Band.Lo, res.Last.Band.Hi, retries)
	}
	fmt.Printf("\ndelivered %d/%d messages\n", delivered, total)
}
