// Divemessenger: a dive-long conversation between two divers drifting
// around a busy lake. Each message runs the full adaptive protocol;
// the channel keeps evolving (the divers are moving), so the selected
// band and bitrate change message to message — the core behavior of
// the paper's Fig 9/12/14.
//
//	go run ./examples/divemessenger
package main

import (
	"fmt"
	"log"

	"aquago"
)

// The dive script: a realistic signal exchange, two signals per
// packet where it makes sense.
var script = []struct {
	from, to aquago.DeviceID
	first    string
	second   string
}{
	{1, 2, "OK?", ""},
	{2, 1, "OK!", ""},
	{1, 2, "Follow me", "Go down"},
	{2, 1, "Hold on", "Ears not equalizing"},
	{1, 2, "OK?", ""},
	{2, 1, "OK!", "Go down"},
	{1, 2, "Look - octopus", "Photo opportunity"},
	{2, 1, "Air at half tank", ""},
	{1, 2, "Turn the dive", "Head to the anchor line"},
	{2, 1, "OK!", ""},
	{1, 2, "Safety stop - 3 minutes", ""},
	{2, 1, "OK!", "Good job"},
}

func main() {
	// Both divers move slowly; the lake is busy (boats, fishing).
	water, err := aquago.SimulatedWater(aquago.Lake,
		aquago.AtDistance(8),
		aquago.WithMotion(aquago.SlowMotion),
		aquago.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Each diver talks over their own view of the same water: diver
	// 2's forward direction is diver 1's backward.
	sessions := map[aquago.DeviceID]*session{}
	media := map[aquago.DeviceID]aquago.Medium{
		1: water,
		2: aquago.SwapDirection(water),
	}
	for _, id := range []aquago.DeviceID{1, 2} {
		s, err := aquago.Dial(id)
		if err != nil {
			log.Fatal(err)
		}
		sessions[id] = &session{s: s}
	}

	delivered, total := 0, 0
	for _, line := range script {
		first, ok := aquago.LookupMessage(line.first)
		if !ok {
			log.Fatalf("unknown message %q", line.first)
		}
		second := uint8(aquago.NoMessage)
		label := fmt.Sprintf("%q", line.first)
		if line.second != "" {
			m2, ok := aquago.LookupMessage(line.second)
			if !ok {
				log.Fatalf("unknown message %q", line.second)
			}
			second = m2.ID
			label = fmt.Sprintf("%q + %q", line.first, line.second)
		}
		res, err := sessions[line.from].s.Send(media[line.from], line.to, first.ID, second)
		if err != nil {
			log.Fatal(err)
		}
		total++
		status := "LOST"
		if res.Delivered {
			delivered++
			status = "ok"
		}
		retries := ""
		if res.Attempts > 1 {
			retries = fmt.Sprintf(" (%d attempts)", res.Attempts)
		}
		fmt.Printf("diver %d -> %d  %-42s %-4s %4.0f bps, band %2d-%2d%s\n",
			line.from, line.to, label, status,
			res.Last.BitrateBPS, res.Last.Band.Lo, res.Last.Band.Hi, retries)
	}
	fmt.Printf("\ndelivered %d/%d messages\n", delivered, total)
}

type session struct{ s *aquago.Session }
