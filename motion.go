package aquago

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file is the network's motion layer: position as a function of
// virtual time. The paper's headline scenarios are divers and drones
// drifting through the water column, and until this layer existed the
// simulation contradicted its own physics — WithNodeMotion perturbed
// the channel's Doppler/fading model while every position, audibility
// edge, grid bucket, conflict edge and cached route stayed frozen at
// Join.
//
// Motion is applied in *position epochs*: an explicit, atomic
// geometry update (Node.SetPosition for one node, Network.AdvanceMotion
// for every node carrying a MotionTrack) that propagates through every
// geometry consumer before the next exchange can observe it —
//
//   - the envelope medium's positions (sim.Medium.SetPosition),
//   - the spatial grid's cell buckets (sim.Grid.Move),
//   - the audibility adjacency rows (patchAdjacencyLocked),
//   - the per-pair channel link caches, live and waveform-bank
//     (sim.Links.InvalidateNode — moved pairs rebuild their impulse
//     responses from the new geometry on next use),
//   - the route and ETX caches (noteMoveLocked, mirroring the PR 6
//     incremental Join invalidation), and
//   - the conflict edges of coexisting scheduler tickets
//     (rewireTicketsLocked).
//
// Epochs are explicit rather than implicit (no hidden interpolation
// inside the MAC gate) because determinism demands it: an epoch is a
// pure function of (current state, target positions), applied under
// the network lock in ascending node-index order, so results are
// identical for any worker count. Apply epochs at quiescent points —
// between transfers, between bulk chunks — for physically meaningful
// results; the epoch discipline bounds the geometry skew of retained
// on-air history to one epoch (DESIGN.md's mobility section).

// Waypoint pins a position at a virtual time (seconds) on a
// MotionTrack.
type Waypoint struct {
	// AtS is the virtual time the node passes Pos.
	AtS float64
	// Pos is the waypoint's position.
	Pos Position
}

// MotionTrack is a piecewise-linear trajectory over virtual time:
// between consecutive waypoints the position interpolates linearly
// (constant velocity); before the first and after the last waypoint it
// clamps (the node holds station). Tracks are absolute — waypoint
// positions are world coordinates on the same axes as Join — and are
// evaluated by Network.AdvanceMotion on the shared virtual timeline.
type MotionTrack struct {
	Waypoints []Waypoint
}

// validate rejects unusable tracks: no waypoints, non-finite times or
// coordinates, or times not strictly ascending.
func (tr MotionTrack) validate() error {
	if len(tr.Waypoints) == 0 {
		return fmt.Errorf("%w: no waypoints", ErrBadTrack)
	}
	for i, wp := range tr.Waypoints {
		if !finite(wp.AtS) || !finitePos(wp.Pos) {
			return fmt.Errorf("%w: waypoint %d is not finite (%+v at %v s)", ErrBadTrack, i, wp.Pos, wp.AtS)
		}
		if i > 0 && wp.AtS <= tr.Waypoints[i-1].AtS {
			return fmt.Errorf("%w: waypoint times must strictly ascend (%g s then %g s)",
				ErrBadTrack, tr.Waypoints[i-1].AtS, wp.AtS)
		}
	}
	return nil
}

// At evaluates the track at virtual time tS: linear interpolation
// between the bracketing waypoints, clamped to the endpoints outside
// the track's time span.
func (tr MotionTrack) At(tS float64) Position {
	wps := tr.Waypoints
	if len(wps) == 0 {
		return Position{}
	}
	if tS <= wps[0].AtS {
		return wps[0].Pos
	}
	if tS >= wps[len(wps)-1].AtS {
		return wps[len(wps)-1].Pos
	}
	// First waypoint at or after tS; i >= 1 because tS > wps[0].AtS.
	i := sort.Search(len(wps), func(k int) bool { return wps[k].AtS >= tS })
	a, b := wps[i-1], wps[i]
	f := (tS - a.AtS) / (b.AtS - a.AtS)
	return Position{
		X: a.Pos.X + f*(b.Pos.X-a.Pos.X),
		Y: a.Pos.Y + f*(b.Pos.Y-a.Pos.Y),
		Z: a.Pos.Z + f*(b.Pos.Z-a.Pos.Z),
	}
}

// DriftTrack builds a constant-velocity track: from the given position
// at virtual time 0, drifting at (vxMS, vyMS, vzMS) meters per second
// for durS seconds, then holding station. The usual diver model: pass
// the Join position as from so the track takes over seamlessly at the
// first epoch.
func DriftTrack(from Position, vxMS, vyMS, vzMS, durS float64) MotionTrack {
	return MotionTrack{Waypoints: []Waypoint{
		{AtS: 0, Pos: from},
		{AtS: durS, Pos: Position{
			X: from.X + vxMS*durS,
			Y: from.Y + vyMS*durS,
			Z: from.Z + vzMS*durS,
		}},
	}}
}

// WithMotionTrack attaches a motion track to the node: each
// Network.AdvanceMotion(toS) epoch moves the node to its track
// position at toS. The track governs *geometry*; pair WithNodeMotion
// with it so the channel's Doppler/fading model matches the physical
// speed (WithNodeMotion alone varies only the channel — see its doc).
// Join validates the track (ErrBadTrack); the Join position stays
// authoritative until the first epoch, so start the track at the Join
// position to avoid an initial jump.
func WithMotionTrack(tr MotionTrack) NodeOption {
	return func(c *nodeConfig) { c.track, c.trackSet = tr, true }
}

// MotionEpoch reports one AdvanceMotion application.
type MotionEpoch struct {
	// AtS is the epoch's effective virtual time (the motion clock,
	// which never runs backward).
	AtS float64
	// Moved lists the devices whose position changed this epoch, in
	// join order.
	Moved []DeviceID
	// Parked lists devices whose target position was refused because it
	// would bring them within earshot of another node sharing their
	// on-air tone (ErrAddressClash re-validated under motion): a parked
	// node holds its previous position and re-tries at the next epoch.
	Parked []DeviceID
}

// AdvanceMotion advances the network's motion clock to toS and moves
// every track-carrying node to its track position at that time — one
// position epoch, applied atomically in ascending join order and
// propagated through the grid, adjacency, link caches, route caches
// and scheduler conflict edges before returning. The motion clock is
// monotone: a toS at or before the current clock re-evaluates tracks
// at the clock (normally a no-op).
//
// Moving a node raises its commit frontier to the epoch time and to
// its new neighborhood's frontier — the node is *there* from toS on,
// so its next transmission cannot be inserted into virtual history its
// new neighbors already committed. A target position that would put
// two same-tone nodes within earshot parks the mover instead (see
// MotionEpoch.Parked). Deterministic and worker-count invariant: the
// epoch is a pure function of current state and the tracks.
func (n *Network) AdvanceMotion(toS float64) (MotionEpoch, error) {
	if !finite(toS) {
		return MotionEpoch{}, fmt.Errorf("%w: non-finite epoch time %v", ErrBadTrack, toS)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if toS > n.motionClockS {
		n.motionClockS = toS
	}
	ep := MotionEpoch{AtS: n.motionClockS}
	for _, nd := range n.order {
		if !nd.hasTrack || nd.departed {
			continue
		}
		target := nd.track.At(n.motionClockS)
		if target == nd.pos {
			continue
		}
		if err := n.setPositionLocked(nd, target); err != nil {
			if errors.Is(err, ErrAddressClash) {
				ep.Parked = append(ep.Parked, nd.id)
				continue
			}
			return ep, err
		}
		ep.Moved = append(ep.Moved, nd.id)
		if n.motionClockS > n.frontier[nd.idx] {
			n.frontier[nd.idx] = n.motionClockS
		}
	}
	return ep, nil
}

// SetPosition moves the node — one single-node position epoch,
// propagated exactly like AdvanceMotion's (grid re-bucket, adjacency
// patch, link-cache invalidation, incremental route/ETX invalidation,
// ticket conflict-edge rewire). A move that would bring the node
// within earshot of another node sharing its on-air tone is refused
// with ErrAddressClash and the position is unchanged — the same
// spatial tone-reuse rule Join enforces, re-validated under motion.
// Departed nodes refuse with ErrNodeLeft; non-finite coordinates with
// ErrBadTrack. A move to the current position is a no-op.
func (nd *Node) SetPosition(p Position) error {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd.departed {
		return fmt.Errorf("%w: node %d", ErrNodeLeft, nd.id)
	}
	return n.setPositionLocked(nd, p)
}

// MotionEpochs returns how many position epochs have been applied (the
// count of individual node moves). Zero means the geometry is still
// exactly the Join-time geometry — the static fast paths are
// byte-identical to a network without a motion layer.
func (n *Network) MotionEpochs() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.geoEpoch
}

// setPositionLocked applies one node's position epoch: validate,
// re-check the spatial tone-reuse rule at the target, then propagate
// the new geometry through every consumer. Callers hold n.mu.
func (n *Network) setPositionLocked(nd *Node, p Position) error {
	if !finitePos(p) {
		return fmt.Errorf("%w: non-finite position %+v", ErrBadTrack, p)
	}
	if p == nd.pos {
		return nil
	}
	if other := n.toneClashAtLocked(p, nd.tone, nd.idx); other != nil {
		return fmt.Errorf("%w: moving ID %d within %s of ID %d (shared on-air tone %d)",
			ErrAddressClash, nd.id, audibleRangeLabel(n.cfg.csRangeM), other.id, nd.tone)
	}
	apply := func() {
		n.med.SetPosition(nd.idx, p)
		n.links.InvalidateNode(nd.idx)
		if n.bank != nil {
			n.bank.InvalidateNode(nd.idx)
		}
	}
	if n.bank != nil {
		// Concurrent waveform mixes read medium geometry and the bank's
		// link cache under the bank's lock; moves mutate both under it.
		n.bank.Sync(apply)
	} else {
		apply()
	}
	n.grid.Move(nd.idx, p)
	nd.pos = p
	n.patchAdjacencyLocked(nd.idx)
	n.noteMoveLocked(nd.idx)
	n.rewireTicketsLocked(nd.idx)
	// Causality: the mover materializes in its new neighborhood *now* —
	// its next send may not start inside virtual history its new
	// neighbors have already committed (their carrier sense could not
	// have heard it; it was elsewhere).
	f := n.frontier[nd.idx]
	n.forEachAudibleLocked(nd.idx, func(j int) {
		if n.frontier[j] > f {
			f = n.frontier[j]
		}
	})
	n.frontier[nd.idx] = f
	n.geoEpoch++
	return nil
}

// toneClashAtLocked returns a node (other than selfIdx) that shares
// the given on-air tone within carrier-sense audibility of pos, or nil
// — the spatial tone-reuse check Join runs, reusable at any candidate
// position. Callers hold n.mu.
func (n *Network) toneClashAtLocked(pos Position, tone DeviceID, selfIdx int) *Node {
	if n.grid.Enabled() {
		n.gridScratch = n.grid.AppendWithin(n.gridScratch[:0], pos, n.cfg.csRangeM)
		for _, j := range n.gridScratch {
			if j != selfIdx && n.order[j].tone == tone {
				return n.order[j]
			}
		}
		return nil
	}
	for j, other := range n.order {
		if j != selfIdx && other.tone == tone {
			return other
		}
	}
	return nil
}

// patchAdjacencyLocked rewrites the audibility adjacency after node
// idx moved: its own row is recomputed from the grid at the new
// position, and every other row gains or loses idx as the move brought
// it into or out of earshot. Rows stay ascending (the diff walks both
// sorted rows in lockstep). No-op in brute-force mode (unlimited
// carrier-sense range — adjacency is implicit). Callers hold n.mu.
func (n *Network) patchAdjacencyLocked(idx int) {
	if n.neighbors == nil {
		return
	}
	n.gridScratch = n.grid.AppendWithin(n.gridScratch[:0], n.order[idx].pos, n.cfg.csRangeM)
	row := make([]int, 0, len(n.gridScratch))
	for _, j := range n.gridScratch {
		if j != idx {
			row = append(row, j)
		}
	}
	old := n.neighbors[idx]
	i, k := 0, 0
	for i < len(old) || k < len(row) {
		switch {
		case k >= len(row) || (i < len(old) && old[i] < row[k]):
			// Out of earshot now: the peer's row loses the mover.
			n.neighbors[old[i]] = dropSorted(n.neighbors[old[i]], idx)
			i++
		case i >= len(old) || row[k] < old[i]:
			// Newly audible: the peer's row gains the mover.
			n.neighbors[row[k]] = insertSorted(n.neighbors[row[k]], idx)
			k++
		default:
			i++
			k++
		}
	}
	n.neighbors[idx] = row
}

// dropSorted removes v from the ascending slice s (v present by
// contract).
func dropSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	return append(s[:i], s[i+1:]...)
}

// insertSorted inserts v into the ascending slice s (v absent by
// contract).
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// finite reports whether v is a usable coordinate or time.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// finitePos reports whether every coordinate of p is finite.
func finitePos(p Position) bool { return finite(p.X) && finite(p.Y) && finite(p.Z) }
