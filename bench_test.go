// An external test package (aquago_test, not aquago): it imports
// internal/exp, which since the macload harness drives the public
// Network API and therefore imports aquago — an in-package test file
// would close an import cycle.
package aquago_test

import (
	"testing"

	"aquago/internal/exp"
)

// One benchmark per paper artifact: each regenerates the figure or
// table through its internal/exp harness (reduced workload per
// iteration; run cmd/aquabench for the full-size series). The bench
// names mirror the per-experiment index in DESIGN.md.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(id, exp.RunConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Series) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// BenchmarkFig03FrequencySelectivity regenerates Fig 3a (device-pair
// frequency selectivity).
func BenchmarkFig03FrequencySelectivity(b *testing.B) { benchExperiment(b, "fig03a") }

// BenchmarkFig03Locations regenerates Fig 3b (selectivity across
// locations).
func BenchmarkFig03Locations(b *testing.B) { benchExperiment(b, "fig03b") }

// BenchmarkFig03Reciprocity regenerates Fig 3c,d (air vs water
// channel reciprocity).
func BenchmarkFig03Reciprocity(b *testing.B) { benchExperiment(b, "fig03cd") }

// BenchmarkFig04AmbientNoise regenerates Fig 4 (noise spectra across
// devices and locations).
func BenchmarkFig04AmbientNoise(b *testing.B) { benchExperiment(b, "fig04") }

// BenchmarkFig08BERvsSNR regenerates Fig 8 (uncoded BER vs
// per-subcarrier SNR against BPSK theory).
func BenchmarkFig08BERvsSNR(b *testing.B) { benchExperiment(b, "fig08") }

// BenchmarkFig09Environments regenerates Fig 9 (bridge/park/lake PER
// and bitrate CDFs, adaptive vs fixed bands).
func BenchmarkFig09Environments(b *testing.B) { benchExperiment(b, "fig09") }

// BenchmarkFig10Depth regenerates Fig 10 (museum depth sweep).
func BenchmarkFig10Depth(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11DeepWater regenerates Fig 11 (12 m deep, hard case).
func BenchmarkFig11DeepWater(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12Range regenerates Fig 12a-c (range sweep, adaptive vs
// fixed).
func BenchmarkFig12Range(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig12LongRange regenerates Fig 12d (FSK beacons to 113 m).
func BenchmarkFig12LongRange(b *testing.B) { benchExperiment(b, "fig12d") }

// BenchmarkFig13BandVsDistance regenerates Fig 13 (selected band
// narrows with distance).
func BenchmarkFig13BandVsDistance(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14Mobility regenerates Fig 14 (mobility + differential
// coding ablation).
func BenchmarkFig14Mobility(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15Orientation regenerates Fig 15 (azimuth sweep).
func BenchmarkFig15Orientation(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16ChannelStability regenerates Fig 16 (min SNR on a
// second preamble).
func BenchmarkFig16ChannelStability(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17SubcarrierSpacing regenerates Fig 17 (50/25/10 Hz
// spacing comparison).
func BenchmarkFig17SubcarrierSpacing(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18CaseAir regenerates Fig 18 (air in the waterproof
// case).
func BenchmarkFig18CaseAir(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkFig19MAC regenerates Fig 19 (carrier-sense collision
// fractions).
func BenchmarkFig19MAC(b *testing.B) { benchExperiment(b, "fig19") }

// BenchmarkTabPreambleDetection regenerates the §3 preamble detection
// and feedback error rates.
func BenchmarkTabPreambleDetection(b *testing.B) { benchExperiment(b, "tab-preamble") }

// BenchmarkTabRuntime regenerates the §3 runtime table.
func BenchmarkTabRuntime(b *testing.B) { benchExperiment(b, "tab-runtime") }

// BenchmarkMacLoadGoodput regenerates the beyond-paper MAC
// goodput-vs-offered-load sweep on the live Network.
func BenchmarkMacLoadGoodput(b *testing.B) { benchExperiment(b, "macload") }

// BenchmarkMacCaptureSIR regenerates the beyond-paper capture-effect
// SIR survival study.
func BenchmarkMacCaptureSIR(b *testing.B) { benchExperiment(b, "macsir") }
