package aquago

import "aquago/internal/dsp"

// waveSlot adapts one exchange (a transmits to b) onto the network's
// shared WaveBank, satisfying phy.Medium with waveform-true
// contention: every stage's transmit waveform is registered on the
// air, and every receive window is the direct signal through the pair
// link plus all audible foreign transmissions, convolved through
// their own channels and delayed by propagation, plus one dose of
// ambient noise. Each window's direct-signal and summed-interference
// powers feed the network's SIR probe (WithSIRProbe).
//
// The conflict-graph scheduler guarantees that while this exchange
// runs, no concurrent exchange shares a node with it or sits within
// carrier-sense range — so the pair links (and every interferer link
// into a or b) are exclusively ours, and whatever a concurrent
// out-of-range exchange registers is filtered from our windows by the
// same range bound. The interference each window hears is therefore
// exactly the committed traffic of scheduler predecessors,
// independent of worker count.
type waveSlot struct {
	net      *Network
	a, b     int
	aID, bID DeviceID
}

// Forward carries a -> b at virtual time atS.
func (ws *waveSlot) Forward(tx []float64, atS float64) []float64 {
	return ws.carry(ws.a, ws.b, tx, atS)
}

// Backward carries b -> a at virtual time atS.
func (ws *waveSlot) Backward(tx []float64, atS float64) []float64 {
	return ws.carry(ws.b, ws.a, tx, atS)
}

func (ws *waveSlot) carry(from, to int, tx []float64, atS float64) []float64 {
	bank := ws.net.bank
	bank.Add(from, atS, 0, tx)
	l, err := bank.Link(from, to)
	if err != nil {
		// Both endpoints were validated at Send entry; an unbuildable
		// link here means the pair degenerated (cannot happen through
		// the public API). Return silence: the exchange reports the
		// stage as lost.
		return make([]float64, len(tx))
	}
	out := l.TransmitAt(tx, atS)
	// The direct signal's received power, before anything is mixed in —
	// the numerator of the window's SIR.
	sigPower := dsp.Power(out)
	// out[0] sits at the direct signal's arrival instant; interferers
	// land at their own arrival times relative to it.
	baseS := atS + bank.DelayS(from, to)
	intPower, err := bank.Interference(out, to, baseS, ws.net.cfg.csRangeM, ws.a, ws.b)
	if err != nil {
		return out
	}
	bank.AmbientNoise(out, to, baseS)
	if probe := ws.net.cfg.sirProbe; probe != nil {
		ws.net.traceMu.Lock()
		//aqualint:callback-under-lock WithSIRProbe documents the hook as serialized, quick, and never re-entering the network; traceMu is the leaf of the lock order and only serializes delivery
		probe(SIRSample{
			Tx: ws.idOf(from), Rx: ws.idOf(to), AtS: baseS,
			SignalPower: sigPower, InterferencePower: intPower,
		})
		ws.net.traceMu.Unlock()
	}
	return out
}

// idOf maps the slot's endpoint indices to device IDs (captured at
// Send entry; the pair cannot change mid-exchange).
func (ws *waveSlot) idOf(idx int) DeviceID {
	if idx == ws.a {
		return ws.aID
	}
	return ws.bID
}
