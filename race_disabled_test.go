//go:build !race

package aquago

// raceEnabled reports whether the race detector is compiled in; alloc
// -count pins skip under it (instrumentation inflates allocations).
const raceEnabled = false
