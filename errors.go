package aquago

import (
	"errors"
	"fmt"

	"aquago/internal/app"
	"aquago/internal/phy"
)

// The public error taxonomy. Every error returned from the aquago
// surface wraps one of these sentinels, so callers branch with
// errors.Is instead of matching message strings:
//
//	res, err := node.Send(ctx, buddy, msg.ID)
//	switch {
//	case errors.Is(err, aquago.ErrNoACK):      // retries exhausted
//	case errors.Is(err, aquago.ErrChannelBusy): // MAC never granted access
//	}
var (
	// ErrNoACK: every transmission attempt went unacknowledged. The
	// accompanying SendResult still describes the attempts — Delivered
	// may be true when only the ACK was lost.
	ErrNoACK = app.ErrNoACK
	// ErrDecodeFailed: no decodable packet in the given audio.
	ErrDecodeFailed = errors.New("aquago: no decodable packet")
	// ErrChannelBusy: the carrier-sense MAC found the channel busy past
	// the network's access deadline.
	ErrChannelBusy = errors.New("aquago: acoustic channel busy")
	// ErrBadMessage: a message ID outside the 240-entry codebook, or a
	// Send with zero or more than two messages.
	ErrBadMessage = app.ErrBadMessage
	// ErrUnknownMessage: a received payload naming no codebook entry.
	ErrUnknownMessage = app.ErrUnknownMessage
	// ErrBadDeviceID: a device ID outside the addressable range
	// (0..59, bounded by the modem's data subcarriers).
	ErrBadDeviceID = phy.ErrBadDeviceID
	// ErrUnknownDevice: a Send to a device that never joined the
	// network.
	ErrUnknownDevice = errors.New("aquago: unknown destination device")
	// ErrDuplicateDevice: a Join with a device ID already in the
	// network.
	ErrDuplicateDevice = errors.New("aquago: device ID already joined")
	// ErrNoBand: band adaptation found no subcarrier clearing the SNR
	// threshold (reported via Result.BandOK; exported for tests).
	ErrNoBand = phy.ErrNoBand
	// ErrInvalidBand: band edges that do not fit the modem numerology.
	ErrInvalidBand = phy.ErrInvalidBand
)

// ChannelBusyError is the concrete error behind ErrChannelBusy: the
// carrier-sense MAC polled past the network's access deadline without
// a grant. It carries the virtual time at which the search gave up —
// the channel was heard (or backoff still pending) busy until then —
// so callers can schedule a retry on the virtual timeline:
//
//	var busy *aquago.ChannelBusyError
//	if errors.As(err, &busy) {
//	    retryAtS := busy.BusyUntilS
//	}
//
// errors.Is(err, ErrChannelBusy) matches it.
type ChannelBusyError struct {
	// BusyUntilS is the virtual time (seconds) the MAC stopped
	// searching at; every poll up to it found the channel busy or the
	// backoff still draining.
	BusyUntilS float64
	// DeadlineS is the access deadline that bounded the search
	// (WithAccessDeadline).
	DeadlineS float64
}

// Error implements error.
func (e *ChannelBusyError) Error() string {
	return fmt.Sprintf("%v: no access within %g virtual seconds (busy until %.2f s)",
		ErrChannelBusy, e.DeadlineS, e.BusyUntilS)
}

// Unwrap makes errors.Is(err, ErrChannelBusy) match.
func (e *ChannelBusyError) Unwrap() error { return ErrChannelBusy }
