package aquago

import (
	"errors"
	"fmt"

	"aquago/internal/app"
	"aquago/internal/phy"
)

// The public error taxonomy. Every error returned from the aquago
// surface wraps one of these sentinels, so callers branch with
// errors.Is instead of matching message strings:
//
//	res, err := node.Send(ctx, buddy, msg.ID)
//	switch {
//	case errors.Is(err, aquago.ErrNoACK):      // retries exhausted
//	case errors.Is(err, aquago.ErrChannelBusy): // MAC never granted access
//	}
var (
	// ErrNoACK: every transmission attempt went unacknowledged. The
	// accompanying SendResult still describes the attempts — Delivered
	// may be true when only the ACK was lost.
	ErrNoACK = app.ErrNoACK
	// ErrDecodeFailed: no decodable packet in the given audio.
	ErrDecodeFailed = errors.New("aquago: no decodable packet")
	// ErrChannelBusy: the carrier-sense MAC found the channel busy past
	// the network's access deadline.
	ErrChannelBusy = errors.New("aquago: acoustic channel busy")
	// ErrBadMessage: a message ID outside the 240-entry codebook, or a
	// Send with zero or more than two messages.
	ErrBadMessage = app.ErrBadMessage
	// ErrUnknownMessage: a received payload naming no codebook entry.
	ErrUnknownMessage = app.ErrUnknownMessage
	// ErrBadDeviceID: a device ID outside the addressable range. The
	// signal-level surfaces (Modem, Session) address 0..59 — one ID
	// tone per data subcarrier; a Network accepts IDs up to
	// MaxNetworkDevices, carrying ID mod 60 on the air.
	ErrBadDeviceID = phy.ErrBadDeviceID
	// ErrAddressClash: a Join — or a position epoch (Node.SetPosition,
	// Network.AdvanceMotion) — whose on-air tone (device ID mod 60)
	// would be in use by another node within carrier-sense audibility
	// of the target position. The 60-tone address space is reused
	// spatially; two audible nodes sharing a tone could not be told
	// apart by a receiver. A refused move leaves the position
	// unchanged (AdvanceMotion parks the mover — see
	// MotionEpoch.Parked).
	ErrAddressClash = errors.New("aquago: on-air address tone already audible")
	// ErrUnknownDevice: a Send to a device that never joined the
	// network.
	ErrUnknownDevice = errors.New("aquago: unknown destination device")
	// ErrDuplicateDevice: a Join with a device ID already in the
	// network.
	ErrDuplicateDevice = errors.New("aquago: device ID already joined")
	// ErrNoRoute: routing found no relay path between the endpoints —
	// the audibility graph (node pairs within the carrier-sense range)
	// does not connect them.
	ErrNoRoute = errors.New("aquago: no relay route between nodes")
	// ErrBadPath: an explicit relay path that cannot be walked — fewer
	// than two nodes, or a repeated node (paths must be acyclic: a relay
	// revisiting a node would loop forever in a real deployment).
	ErrBadPath = errors.New("aquago: invalid relay path")
	// ErrNoBand: band adaptation found no subcarrier clearing the SNR
	// threshold (reported via Result.BandOK; exported for tests).
	ErrNoBand = phy.ErrNoBand
	// ErrInvalidBand: band edges that do not fit the modem numerology.
	ErrInvalidBand = phy.ErrInvalidBand

	// The async transmit queue's taxonomy (txq.go). ErrQueueFull: an
	// Enqueue/SendAsync found the node's transmit queue at capacity
	// (WithTxQueueCapacity) — the caller owns the backpressure
	// decision, so the job is rejected immediately instead of blocking.
	ErrQueueFull = errors.New("aquago: transmit queue full")
	// ErrTxCancelled: a queued transmission was cancelled before it
	// completed — TxHandle.Cancel, or the enqueue context expiring. A
	// job cancelled mid-exchange additionally wraps the context's own
	// error.
	ErrTxCancelled = errors.New("aquago: queued transmission cancelled")
	// ErrNodeLeft: the node departed the network (Node.Leave). Queued
	// work drains with this error, and new sends from — or addressed
	// to — the departed node are refused with it.
	ErrNodeLeft = errors.New("aquago: node left the network")

	// The motion layer's taxonomy (motion.go). ErrBadTrack: an unusable
	// motion track (no waypoints, non-finite coordinates or times,
	// times not strictly ascending) or a non-finite position/epoch time
	// passed to SetPosition/AdvanceMotion.
	ErrBadTrack = errors.New("aquago: invalid motion track")

	// The stream transport's taxonomy (stream.go). ErrBadStream: an
	// OpenStream option outside its valid range — a window outside
	// [1, MaxStreamWindow], a negative retry budget, or a non-finite
	// retransmission quantum.
	ErrBadStream = errors.New("aquago: invalid stream configuration")
	// ErrStreamClosed: a Write on a stream whose write side was closed
	// (CloseWrite) or that was torn down (Close); Close on a stream
	// with unacknowledged data also fails the stream with it.
	ErrStreamClosed = errors.New("aquago: stream closed")
)

// ChannelBusyError is the concrete error behind ErrChannelBusy: the
// carrier-sense MAC polled past the network's access deadline without
// a grant. It carries the virtual time at which the search gave up —
// the channel was heard (or backoff still pending) busy until then —
// so callers can schedule a retry on the virtual timeline:
//
//	var busy *aquago.ChannelBusyError
//	if errors.As(err, &busy) {
//	    retryAtS := busy.BusyUntilS
//	}
//
// errors.Is(err, ErrChannelBusy) matches it.
type ChannelBusyError struct {
	// BusyUntilS is the virtual time (seconds) the MAC stopped
	// searching at; every poll up to it found the channel busy or the
	// backoff still draining.
	BusyUntilS float64
	// DeadlineS is the access deadline that bounded the search
	// (WithAccessDeadline).
	DeadlineS float64
}

// Error implements error.
func (e *ChannelBusyError) Error() string {
	return fmt.Sprintf("%v: no access within %g virtual seconds (busy until %.2f s)",
		ErrChannelBusy, e.DeadlineS, e.BusyUntilS)
}

// Unwrap makes errors.Is(err, ErrChannelBusy) match.
func (e *ChannelBusyError) Unwrap() error { return ErrChannelBusy }

// RelayError reports a multi-hop transfer (Network.SendVia,
// Network.SendBulkVia, Node.SendBulk) that died mid-path: which hop
// failed, between which devices, on which bulk packet, and why. The
// underlying cause unwraps, so both layers of the taxonomy compose:
//
//	var hopErr *aquago.RelayError
//	if errors.As(err, &hopErr) {
//	    log.Printf("hop %d (%d -> %d) failed", hopErr.Hop, hopErr.From, hopErr.To)
//	}
//	if errors.Is(err, aquago.ErrChannelBusy) { ... } // the hop's cause
type RelayError struct {
	// Hop is the zero-based index of the failed hop along Path
	// (hop h carries Path[h] -> Path[h+1]).
	Hop int
	// From and To are the failed hop's endpoints.
	From, To DeviceID
	// Path is the full relay path the transfer was walking.
	Path []DeviceID
	// Pkt is the zero-based bulk packet the failure struck (0 for a
	// single-message SendVia).
	Pkt int
	// Err is the hop's underlying failure (ErrNoACK, ErrChannelBusy,
	// a cancelled context, ...).
	Err error
}

// Error implements error.
func (e *RelayError) Error() string {
	return fmt.Sprintf("aquago: relay hop %d (%d -> %d) of path %v failed on packet %d: %v",
		e.Hop, e.From, e.To, e.Path, e.Pkt, e.Err)
}

// Unwrap exposes the failed hop's cause to errors.Is/errors.As.
func (e *RelayError) Unwrap() error { return e.Err }

// StreamError reports a reliable stream (Node.OpenStream) that failed:
// which segment died, between which devices, and why. The underlying
// cause unwraps, so the taxonomy composes the same way RelayError's
// does:
//
//	var serr *aquago.StreamError
//	if errors.As(err, &serr) {
//	    log.Printf("segment %d (%d -> %d) failed", serr.Seq, serr.From, serr.To)
//	}
//	if errors.Is(err, aquago.ErrNoACK) { ... } // retransmissions exhausted
type StreamError struct {
	// Seq is the zero-based segment (= payload byte offset) the stream
	// died on.
	Seq int
	// From and To are the stream's endpoints.
	From, To DeviceID
	// Err is the underlying failure (ErrNoACK after the budget ran
	// out, ErrTxCancelled, ErrNodeLeft, ...).
	Err error
}

// Error implements error.
func (e *StreamError) Error() string {
	return fmt.Sprintf("aquago: stream segment %d (%d -> %d) failed: %v",
		e.Seq, e.From, e.To, e.Err)
}

// Unwrap exposes the failed segment's cause to errors.Is/errors.As.
func (e *StreamError) Unwrap() error { return e.Err }
