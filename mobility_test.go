package aquago

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// In-package property tests for the motion layer (motion.go): after
// every position epoch the incrementally maintained structures — grid
// buckets, audibility adjacency, route/ETX caches, scheduler conflict
// edges — must equal a brute-force recomputation from the current
// geometry, across seeds, carrier-sense ranges and drift speeds. Plus
// the satellite regressions: Leave invalidating routes, and the
// address-clash rule re-validated under motion.

func TestMotionTrackAt(t *testing.T) {
	tr := MotionTrack{Waypoints: []Waypoint{
		{AtS: 10, Pos: Position{X: 0, Y: 0, Z: 2}},
		{AtS: 20, Pos: Position{X: 10, Y: -4, Z: 2}},
		{AtS: 25, Pos: Position{X: 10, Y: -4, Z: 7}},
	}}
	cases := []struct {
		tS   float64
		want Position
	}{
		{-5, Position{X: 0, Y: 0, Z: 2}},  // clamp before
		{10, Position{X: 0, Y: 0, Z: 2}},  // first waypoint
		{15, Position{X: 5, Y: -2, Z: 2}}, // midpoint of leg 1
		{20, Position{X: 10, Y: -4, Z: 2}},
		{24, Position{X: 10, Y: -4, Z: 6}}, // 4/5 of leg 2
		{99, Position{X: 10, Y: -4, Z: 7}}, // clamp after
	}
	for _, c := range cases {
		if got := tr.At(c.tS); got != c.want {
			t.Fatalf("At(%g) = %+v, want %+v", c.tS, got, c.want)
		}
	}
	drift := DriftTrack(Position{X: 1, Y: 2, Z: 3}, 0.5, -0.25, 0, 40)
	if got, want := drift.At(20), (Position{X: 11, Y: -3, Z: 3}); got != want {
		t.Fatalf("drift At(20) = %+v, want %+v", got, want)
	}
	if got, want := drift.At(100), (Position{X: 21, Y: -8, Z: 3}); got != want {
		t.Fatalf("drift holds station: At(100) = %+v, want %+v", got, want)
	}
}

func TestMotionTrackValidation(t *testing.T) {
	bad := []MotionTrack{
		{}, // no waypoints
		{Waypoints: []Waypoint{{AtS: math.NaN(), Pos: Position{Z: 1}}}},
		{Waypoints: []Waypoint{{AtS: 0, Pos: Position{X: math.Inf(1), Z: 1}}}},
		{Waypoints: []Waypoint{{AtS: 5, Pos: Position{Z: 1}}, {AtS: 5, Pos: Position{X: 1, Z: 1}}}}, // not ascending
	}
	for i, tr := range bad {
		net, err := NewNetwork(Bridge)
		if err != nil {
			t.Fatal(err)
		}
		_, err = net.Join(0, Position{Z: 1}, WithMotionTrack(tr))
		if !errors.Is(err, ErrBadTrack) {
			t.Fatalf("track %d: Join err = %v, want ErrBadTrack", i, err)
		}
	}
	net, err := NewNetwork(Bridge)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := net.Join(0, Position{Z: 1}, WithMotionTrack(DriftTrack(Position{Z: 1}, 1, 0, 0, 10)))
	if err != nil {
		t.Fatalf("valid track refused: %v", err)
	}
	if err := nd.SetPosition(Position{X: math.NaN(), Z: 1}); !errors.Is(err, ErrBadTrack) {
		t.Fatalf("non-finite SetPosition err = %v, want ErrBadTrack", err)
	}
	if _, err := net.AdvanceMotion(math.Inf(1)); !errors.Is(err, ErrBadTrack) {
		t.Fatalf("non-finite AdvanceMotion err = %v, want ErrBadTrack", err)
	}
}

// moveRandom applies one random position epoch to a random node.
// Below 60 nodes every tone is unique, so ErrAddressClash (tolerated:
// a refused move leaves a consistent geometry) cannot actually fire.
func moveRandom(t *testing.T, net *Network, rng *rand.Rand, stepM float64) int {
	t.Helper()
	i := rng.Intn(len(net.order))
	nd := net.order[i]
	p := nd.Position()
	p.X += (rng.Float64()*2 - 1) * stepM
	p.Y += (rng.Float64()*2 - 1) * stepM
	p.Z = 1 + rng.Float64()*4
	if err := nd.SetPosition(p); err != nil && !errors.Is(err, ErrAddressClash) {
		t.Fatalf("SetPosition: %v", err)
	}
	return i
}

// TestAdjacencyMatchesBruteUnderMotion drives random position epochs
// and checks, after every one, that the incrementally patched
// adjacency rows and the grid's range queries equal the brute-force
// O(N^2) recomputation from current positions.
func TestAdjacencyMatchesBruteUnderMotion(t *testing.T) {
	for _, cs := range []float64{0, 7.5, 30} {
		for _, stepM := range []float64{2, 12} {
			for seed := int64(1); seed <= 3; seed++ {
				net := scatterNetwork(t, 40, cs, seed)
				rng := rand.New(rand.NewSource(seed*86243 + int64(stepM)))
				for epoch := 0; epoch < 25; epoch++ {
					moveRandom(t, net, rng, stepM)
					net.mu.Lock()
					for i := range net.order {
						var got []int
						net.forEachAudibleLocked(i, func(j int) { got = append(got, j) })
						want := bruteAudible(net, i)
						if fmt.Sprint(got) != fmt.Sprint(want) {
							net.mu.Unlock()
							t.Fatalf("cs=%g step=%g seed=%d epoch %d node %d: adjacency %v != brute %v",
								cs, stepM, seed, epoch, i, got, want)
						}
						if cs > 0 {
							grid := net.grid.AppendWithin(nil, net.order[i].pos, cs)
							var wantG []int
							for j := range net.order {
								if net.order[i].pos.DistanceTo(net.order[j].pos) <= cs {
									wantG = append(wantG, j)
								}
							}
							if fmt.Sprint(grid) != fmt.Sprint(wantG) {
								net.mu.Unlock()
								t.Fatalf("cs=%g step=%g seed=%d epoch %d node %d: grid query %v != brute %v",
									cs, stepM, seed, epoch, i, grid, wantG)
							}
						}
					}
					net.mu.Unlock()
				}
			}
		}
	}
}

// TestRoutesMatchBruteUnderMotion checks that the cache-consulting
// route layer stays exact under motion: after every epoch, sampled
// routeLocked answers (which reuse any cache entry the epoch's
// invalidation kept) must equal the brute-force Dijkstra over current
// geometry — proving noteMoveLocked drops everything stale and
// nothing it shouldn't. The MinETX case additionally proves every
// surviving cached ETX weight equals a fresh probe of the pair at its
// current positions.
func TestRoutesMatchBruteUnderMotion(t *testing.T) {
	cases := []struct {
		n      int
		cs     float64
		stepM  float64
		epochs int
		policy RoutingPolicy
	}{
		{40, 20, 6, 8, MinHop},
		{40, 12, 15, 8, MinHop},
		{10, 20, 8, 4, MinETX},
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 2; seed++ {
			net := scatterNetwork(t, c.n, c.cs, seed, WithRouting(c.policy))
			rng := rand.New(rand.NewSource(seed*57737 + int64(c.n)))
			for epoch := 0; epoch < c.epochs; epoch++ {
				// Warm the caches, then move: survivors must still be exact.
				net.mu.Lock()
				for trial := 0; trial < 6; trial++ {
					src := rng.Intn(c.n)
					dst := rng.Intn(c.n - 1)
					if dst >= src {
						dst++
					}
					got, gotErr := net.routeLocked(src, dst)
					want, wantErr := bruteRouteLocked(net, src, dst)
					if (gotErr == nil) != (wantErr == nil) || fmt.Sprint(got) != fmt.Sprint(want) {
						net.mu.Unlock()
						t.Fatalf("%v n=%d seed=%d epoch %d %d->%d: path %v (%v) != brute %v (%v)",
							c.policy, c.n, seed, epoch, src, dst, got, gotErr, want, wantErr)
					}
				}
				if c.policy == MinETX {
					for key, cached := range net.etxCache {
						fwd, bwd, err := net.links.PairSNRdB(key[0], key[1])
						if err != nil {
							net.mu.Unlock()
							t.Fatal(err)
						}
						fresh := 1 / (hopProbability(fwd) * hopProbability(bwd))
						if cached != fresh {
							net.mu.Unlock()
							t.Fatalf("n=%d seed=%d epoch %d: stale ETX cache %v: cached %g, fresh probe %g",
								c.n, seed, epoch, key, cached, fresh)
						}
					}
				}
				net.mu.Unlock()
				moveRandom(t, net, rng, c.stepM)
			}
		}
	}
}

// TestTicketEdgesMatchBruteUnderMotion interleaves ticket
// registration, resolution and position epochs, checking after every
// step the rewire invariants: a still-parked ticket's edges and wait
// count equal the brute interference recomputation at *current*
// geometry, and an admitted ticket (ready closed) is never blocked
// again — admission is monotone.
func TestTicketEdgesMatchBruteUnderMotion(t *testing.T) {
	for _, cs := range []float64{12, 30} {
		for seed := int64(1); seed <= 3; seed++ {
			net := scatterNetwork(t, 24, cs, seed)
			rng := rand.New(rand.NewSource(seed * 62851))
			net.mu.Lock()
			var live []*ticket
			check := func(step string) {
				for _, tk := range live {
					ready := false
					select {
					case <-tk.ready:
						ready = true
					default:
					}
					if ready {
						// Monotone admission: no edge may point at an
						// admitted ticket (every edge holds a wait).
						if tk.waits != 0 {
							t.Fatalf("cs=%g seed=%d %s: ready ticket %d holds %d waits", cs, seed, step, tk.seq, tk.waits)
						}
						for _, u := range live {
							for _, b := range u.blocks {
								if b == tk {
									t.Fatalf("cs=%g seed=%d %s: admitted ticket %d re-blocked by %d", cs, seed, step, tk.seq, u.seq)
								}
							}
						}
						continue
					}
					// A parked ticket waits on every earlier live ticket
					// that interferes at current geometry — admitted or
					// parked alike (admitted predecessors still resolve).
					wantWaits := 0
					for _, u := range live {
						if u.seq < tk.seq && bruteInterferes(net, u.tx, u.rx, tk.tx, tk.rx) {
							wantWaits++
						}
					}
					if tk.waits != wantWaits {
						t.Fatalf("cs=%g seed=%d %s: ticket %d waits=%d, brute %d", cs, seed, step, tk.seq, tk.waits, wantWaits)
					}
				}
			}
			for step := 0; step < 80; step++ {
				switch {
				case len(live) > 0 && rng.Intn(4) == 0:
					victim := live[0]
					net.resolveLocked(victim)
					live = live[1:]
				case rng.Intn(3) == 0:
					// A position epoch between registrations.
					net.mu.Unlock()
					moveRandom(t, net, rng, 10)
					net.mu.Lock()
				default:
					tx := rng.Intn(len(net.order))
					rx := rng.Intn(len(net.order) - 1)
					if rx >= tx {
						rx++
					}
					live = append(live, net.registerTicketLocked(tx, rx))
				}
				check(fmt.Sprintf("step %d", step))
			}
			for len(live) > 0 {
				net.resolveLocked(live[0])
				live = live[1:]
				check("drain")
			}
			if len(net.tickets) != 0 {
				t.Fatalf("cs=%g seed=%d: %d tickets leaked", cs, seed, len(net.tickets))
			}
			net.mu.Unlock()
		}
	}
}

// TestAdvanceMotionFollowsTracks pins the track-driven epoch loop:
// positions follow MotionTrack.At on the monotone motion clock,
// trackless nodes hold station, and the epoch report lists movers.
func TestAdvanceMotionFollowsTracks(t *testing.T) {
	net, err := NewNetwork(Bridge, WithCSRange(30))
	if err != nil {
		t.Fatal(err)
	}
	track := DriftTrack(Position{Z: 2}, 0.5, 0, 0, 60)
	diver, err := net.Join(0, Position{Z: 2}, WithMotionTrack(track))
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := net.Join(1, Position{X: 10, Z: 2}, WithNodeMotion(Static))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.AdvanceMotion(20)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ep.Moved) != "[0]" || len(ep.Parked) != 0 {
		t.Fatalf("epoch report %+v, want moved=[0]", ep)
	}
	if got, want := diver.Position(), track.At(20); got != want {
		t.Fatalf("diver at %+v, want %+v", got, want)
	}
	if got := anchor.Position(); got != (Position{X: 10, Z: 2}) {
		t.Fatalf("trackless anchor moved to %+v", got)
	}
	// The motion clock is monotone: rewinding re-evaluates at 20 s.
	if _, err := net.AdvanceMotion(5); err != nil {
		t.Fatal(err)
	}
	if got, want := diver.Position(), track.At(20); got != want {
		t.Fatalf("motion clock rewound: diver at %+v, want %+v", got, want)
	}
	if net.MotionEpochs() == 0 {
		t.Fatal("MotionEpochs still zero after a move")
	}
}

// TestSetPositionAddressClash pins the satellite: the spatial
// tone-reuse rule is re-validated on every position change. Device 60
// shares device 0's on-air tone; moving it into earshot must refuse
// with ErrAddressClash leaving the position unchanged, AdvanceMotion
// must park it instead of moving it, and the parked node must
// complete its track the moment the clash clears.
func TestSetPositionAddressClash(t *testing.T) {
	net, err := NewNetwork(Bridge, WithCSRange(30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, Position{Z: 1}); err != nil {
		t.Fatal(err)
	}
	// Same tone (60 mod 60 = 0), 100 m away — legal, out of earshot,
	// on a track that would drive it on top of device 0.
	twin, err := net.Join(60, Position{X: 100, Z: 1},
		WithMotionTrack(DriftTrack(Position{X: 100, Z: 1}, -10, 0, 0, 10)))
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.SetPosition(Position{X: 20, Z: 1}); !errors.Is(err, ErrAddressClash) {
		t.Fatalf("clashing move err = %v, want ErrAddressClash", err)
	}
	if got := twin.Position(); got != (Position{X: 100, Z: 1}) {
		t.Fatalf("refused move changed position to %+v", got)
	}
	ep, err := net.AdvanceMotion(10) // track target X=0: on top of the clash
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ep.Parked) != "[60]" || len(ep.Moved) != 0 {
		t.Fatalf("epoch report %+v, want parked=[60]", ep)
	}
	if got := twin.Position(); got != (Position{X: 100, Z: 1}) {
		t.Fatalf("parked node moved to %+v", got)
	}
	// The clash clears (device 0 leaves the shared tone's earshot by
	// departing the whole network is NOT the rule — it must *move*);
	// the parked node then jumps to its track position.
	if err := net.order[0].SetPosition(Position{X: 200, Z: 1}); err != nil {
		t.Fatal(err)
	}
	ep, err = net.AdvanceMotion(10)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ep.Moved) != "[60]" {
		t.Fatalf("epoch report %+v, want moved=[60] after clash cleared", ep)
	}
	if got := twin.Position(); got != (Position{Z: 1}) {
		t.Fatalf("unparked node at %+v, want track end {0 0 1}", got)
	}
}

// TestRouteAfterLeave pins the satellite bugfix: Leave must invalidate
// cached routes through the departed node, Route must never relay
// through departed nodes, and departed endpoints must refuse with
// ErrNodeLeft. Geometry: a 3-hop line S - R1 - R2 - T with a longer
// detour D, audible at 30 m.
func TestRouteAfterLeave(t *testing.T) {
	net, err := NewNetwork(Bridge, WithCSRange(30))
	if err != nil {
		t.Fatal(err)
	}
	lay := map[DeviceID]Position{
		0: {X: 0, Z: 1},         // S
		1: {X: 25, Z: 1},        // R1: on the short path
		2: {X: 50, Z: 1},        // R2
		3: {X: 75, Z: 1},        // T
		4: {X: 25, Y: 15, Z: 1}, // D: detour around R1 (~29.2 m from both S and R2)
	}
	for id := DeviceID(0); id <= 4; id++ {
		if _, err := net.Join(id, lay[id]); err != nil {
			t.Fatal(err)
		}
	}
	before, err := net.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(before) != "[0 1 2 3]" {
		t.Fatalf("pre-Leave route %v, want the line [0 1 2 3]", before)
	}
	r1, _ := net.Node(1)
	r1.Leave()
	after, err := net.Route(0, 3)
	if err != nil {
		t.Fatalf("route after Leave: %v (stale cache through the departed node?)", err)
	}
	for _, id := range after {
		if id == 1 {
			t.Fatalf("route %v relays through departed node 1", after)
		}
	}
	if fmt.Sprint(after) != "[0 4 2 3]" {
		t.Fatalf("post-Leave route %v, want the detour [0 4 2 3]", after)
	}
	if _, err := net.Route(1, 3); !errors.Is(err, ErrNodeLeft) {
		t.Fatalf("route from departed src err = %v, want ErrNodeLeft", err)
	}
	if _, err := net.Route(0, 1); !errors.Is(err, ErrNodeLeft) {
		t.Fatalf("route to departed dst err = %v, want ErrNodeLeft", err)
	}
	// An untouched pair's cache survives: D->R2 avoids R1 entirely.
	if _, err := net.Route(4, 2); err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	_, held := net.routeCache[[2]int{4, 2}]
	net.mu.Unlock()
	if !held {
		t.Fatal("D->R2 missing from cache after warming")
	}
}

// TestMoveInvalidatesRoutesIncrementally mirrors the Join test: a
// position epoch must drop exactly the cached routes it could have
// changed — paths through the mover, and paths the mover's new
// position can beat — and keep the rest.
func TestMoveInvalidatesRoutesIncrementally(t *testing.T) {
	net, err := NewNetwork(Bridge, WithCSRange(30))
	if err != nil {
		t.Fatal(err)
	}
	// S and T 50 m apart, connected over the arc A-B-C; X idles far
	// away, then moves between S and T to shortcut them.
	lay := map[DeviceID]Position{
		0: {X: 0, Z: 1},           // S
		1: {X: 0, Y: 28, Z: 1},    // A
		2: {X: 25, Y: 42, Z: 1},   // B
		3: {X: 50, Y: 28, Z: 1},   // C
		4: {X: 50, Z: 1},          // T
		5: {X: 200, Y: 200, Z: 1}, // X, initially isolated
	}
	for id := DeviceID(0); id <= 5; id++ {
		if _, err := net.Join(id, lay[id]); err != nil {
			t.Fatal(err)
		}
	}
	long, err := net.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(long) != 5 {
		t.Fatalf("pre-move S->T path %v, want the 4-hop arc", long)
	}
	if _, err := net.Route(1, 2); err != nil { // A->B: X cannot touch it
		t.Fatal(err)
	}
	x, _ := net.Node(5)
	if err := x.SetPosition(Position{X: 25, Z: 1}); err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	_, stHeld := net.routeCache[[2]int{0, 4}]
	_, abHeld := net.routeCache[[2]int{1, 2}]
	net.mu.Unlock()
	if stHeld {
		t.Fatal("S->T survived a move that shortcuts it")
	}
	if !abHeld {
		t.Fatal("A->B was invalidated by a move that cannot improve it")
	}
	short, err := net.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(short) != "[0 5 4]" {
		t.Fatalf("post-move S->T = %v, want [0 5 4]", short)
	}
	// Moving X away again must drop the path through it.
	if err := x.SetPosition(Position{X: 200, Y: 200, Z: 1}); err != nil {
		t.Fatal(err)
	}
	again, err := net.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 5 {
		t.Fatalf("S->T after X left the gap = %v, want the arc back", again)
	}
}

// TestStaticNetworksUntouchedByMotionLayer pins the byte-identity
// contract's cheapest observable: a network that never moves reports
// zero epochs and its bulk transfers never consult the reroute path.
func TestStaticNetworksUntouchedByMotionLayer(t *testing.T) {
	net := scatterNetwork(t, 8, 25, 3)
	if net.MotionEpochs() != 0 {
		t.Fatal("static network reports motion epochs")
	}
	net.mu.Lock()
	nodes := append([]*Node(nil), net.order[:3]...)
	net.mu.Unlock()
	got, changed, err := net.rerouteBulkHop(nodes, 0)
	if err != nil || changed {
		t.Fatalf("static reroute check: changed=%v err=%v, want untouched", changed, err)
	}
	if &got[0] != &nodes[0] {
		t.Fatal("static reroute check reallocated the path")
	}
}
