package aquago_test

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"aquago"
)

// ExampleNetwork builds a 3-node network — two divers and a surface
// buddy contending for one body of water — and sends from both divers
// concurrently. The carrier-sense MAC serializes them on the shared
// virtual timeline, so nothing collides, and a network-wide Trace
// observes every protocol stage.
func ExampleNetwork() {
	var stages atomic.Int64
	net, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithNetworkSeed(3),
		aquago.WithNetworkTrace(aquago.TraceFunc(func(ev aquago.StageEvent) {
			stages.Add(1)
		})))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		log.Fatal(err)
	}
	diverA, err := net.Join(1, aquago.Position{X: 5, Z: 1})
	if err != nil {
		log.Fatal(err)
	}
	diverB, err := net.Join(2, aquago.Position{X: -4, Y: 3, Z: 1})
	if err != nil {
		log.Fatal(err)
	}

	okMsg, _ := aquago.LookupMessage("OK?")
	delivered := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, diver := range []*aquago.Node{diverA, diverB} {
		wg.Add(1)
		go func(nd *aquago.Node) {
			defer wg.Done()
			res, err := nd.Send(context.Background(), 0, okMsg.ID)
			if err == nil && res.Delivered {
				mu.Lock()
				delivered++
				mu.Unlock()
			}
		}(diver)
	}
	wg.Wait()

	_, collisions := net.CollisionStats()
	fmt.Println("delivered:", delivered)
	fmt.Println("collision fraction:", collisions)
	fmt.Println("trace saw stages:", stages.Load() > 0)
	// Output:
	// delivered: 2
	// collision fraction: 0
	// trace saw stages: true
}

// ExampleSession_Send demonstrates the full adaptive protocol over
// simulated water: band selection, feedback, data, ACK.
func ExampleSession_Send() {
	water, err := aquago.SimulatedWater(aquago.Bridge,
		aquago.AtDistance(5), aquago.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	session, err := aquago.Dial(4)
	if err != nil {
		log.Fatal(err)
	}
	ok, _ := aquago.LookupMessage("OK?")
	res, err := session.Send(water, 9, ok.ID, aquago.NoMessage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("delivered:", res.Delivered, "acknowledged:", res.Acknowledged)
	// Output: delivered: true acknowledged: true
}

// ExampleModem_EncodeMessages shows the signal-level API: a message
// becomes audio samples and back, no feedback channel required.
func ExampleModem_EncodeMessages() {
	modem, err := aquago.NewModem(aquago.WithBand(10, 40))
	if err != nil {
		log.Fatal(err)
	}
	help, _ := aquago.LookupMessage("Help me")
	wave, err := modem.EncodeMessages(3, help.ID, aquago.NoMessage)
	if err != nil {
		log.Fatal(err)
	}
	msgs, ok := modem.DecodeMessages(wave, 3)
	fmt.Println(ok, msgs[0].Text)
	// Output: true Help me
}

// ExampleLookupMessage shows codebook access.
func ExampleLookupMessage() {
	m, ok := aquago.LookupMessage("Out of air")
	fmt.Println(ok, m.Category, m.Common)
	// Output: true air-and-gas true
}

// ExampleNewBeacon encodes and decodes a long-range SoS identity.
func ExampleNewBeacon() {
	beacon, err := aquago.NewBeacon(10) // 10 bps FSK
	if err != nil {
		log.Fatal(err)
	}
	tx, err := beacon.EncodeID(27)
	if err != nil {
		log.Fatal(err)
	}
	bits, _, ok := beacon.Decode(tx, 6)
	id := 0
	for _, b := range bits {
		id = id<<1 | b
	}
	fmt.Println(ok, id)
	// Output: true 27
}
