package aquago_test

import (
	"fmt"
	"log"

	"aquago"
)

// ExampleSession_Send demonstrates the full adaptive protocol over
// simulated water: band selection, feedback, data, ACK.
func ExampleSession_Send() {
	water, err := aquago.SimulatedWater(aquago.Bridge,
		aquago.AtDistance(5), aquago.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	session, err := aquago.Dial(4)
	if err != nil {
		log.Fatal(err)
	}
	ok, _ := aquago.LookupMessage("OK?")
	res, err := session.Send(water, 9, ok.ID, aquago.NoMessage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("delivered:", res.Delivered, "acknowledged:", res.Acknowledged)
	// Output: delivered: true acknowledged: true
}

// ExampleModem_EncodeMessages shows the signal-level API: a message
// becomes audio samples and back, no feedback channel required.
func ExampleModem_EncodeMessages() {
	modem, err := aquago.NewModem(aquago.WithBand(10, 40))
	if err != nil {
		log.Fatal(err)
	}
	help, _ := aquago.LookupMessage("Help me")
	wave, err := modem.EncodeMessages(3, help.ID, aquago.NoMessage)
	if err != nil {
		log.Fatal(err)
	}
	msgs, ok := modem.DecodeMessages(wave, 3)
	fmt.Println(ok, msgs[0].Text)
	// Output: true Help me
}

// ExampleLookupMessage shows codebook access.
func ExampleLookupMessage() {
	m, ok := aquago.LookupMessage("Out of air")
	fmt.Println(ok, m.Category, m.Common)
	// Output: true air-and-gas true
}

// ExampleNewBeacon encodes and decodes a long-range SoS identity.
func ExampleNewBeacon() {
	beacon, err := aquago.NewBeacon(10) // 10 bps FSK
	if err != nil {
		log.Fatal(err)
	}
	tx, err := beacon.EncodeID(27)
	if err != nil {
		log.Fatal(err)
	}
	bits, _, ok := beacon.Decode(tx, 6)
	id := 0
	for _, b := range bits {
		id = id<<1 | b
	}
	fmt.Println(ok, id)
	// Output: true 27
}
