package aquago

import (
	"sort"
	"testing"
)

// TestTxQueuedNodesSortedLocked pins the dispatch gate's scan order to
// ascending device IDs. The gate formerly ranged over the tx.nodes map
// directly, so its scan order rode Go's per-run map randomization;
// with 64 nodes an unsorted materialization comes back ascending with
// probability 1/64!, so this test fails essentially always without
// the sort in txQueuedNodesSortedLocked.
func TestTxQueuedNodesSortedLocked(t *testing.T) {
	const nNodes = 64
	n := &Network{}
	n.tx.nodes = make(map[*Node]struct{}, nNodes)
	// Insert in descending ID order so even an insertion-ordered map
	// would not be accidentally ascending.
	for id := nNodes - 1; id >= 0; id-- {
		n.tx.nodes[&Node{id: DeviceID(id)}] = struct{}{}
	}
	got := n.txQueuedNodesSortedLocked()
	if len(got) != nNodes {
		t.Fatalf("materialized %d nodes, want %d", len(got), nNodes)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].id < got[j].id }) {
		ids := make([]DeviceID, len(got))
		for i, nd := range got {
			ids[i] = nd.id
		}
		t.Fatalf("dispatch-gate node scan is not in device-ID order: %v", ids)
	}
}
