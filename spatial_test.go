package aquago

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// In-package property tests for the spatial-index plumbing: the
// grid-backed audibility adjacency, the scheduler's precomputed
// conflict edges, and the neighbor-expanding Dijkstra must agree,
// node for node and edge for edge, with the brute-force O(N^2)
// definitions they replaced.

// scatterNetwork joins n nodes at seeded random positions inside a
// box sized to the carrier-sense range. Tone clashes (IDs >= 60 reuse
// tones) are resolved by redrawing the position, keeping the layout a
// pure function of the seed.
func scatterNetwork(t testing.TB, n int, csRangeM float64, seed int64, opts ...NetworkOption) *Network {
	t.Helper()
	net, err := NewNetwork(Bridge, append([]NetworkOption{
		WithNetworkSeed(seed), WithCSRange(csRangeM)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	side := 40.0
	if csRangeM > 0 {
		side = csRangeM * (1.5 + math.Sqrt(float64(n))/2)
	}
	// Half the draws land on a lattice of quarter-range pitch, so
	// plenty of nodes straddle cell boundaries and pair distances hit
	// the audibility radius exactly.
	quant := csRangeM / 4
	draw := func() Position {
		p := Position{X: rng.Float64() * side, Y: rng.Float64() * side, Z: 1 + rng.Float64()*4}
		if quant > 0 && rng.Intn(2) == 0 {
			p.X = math.Round(p.X/quant) * quant
			p.Y = math.Round(p.Y/quant) * quant
		}
		return p
	}
	for i := 0; i < n; i++ {
		joined := false
		for tries := 0; tries < 500; tries++ {
			if _, err := net.Join(DeviceID(i), draw()); err == nil {
				joined = true
				break
			}
		}
		if !joined {
			t.Fatalf("node %d: no clash-free position in 500 draws", i)
		}
	}
	return net
}

// bruteAudible is the O(N^2) audibility definition the grid adjacency
// replaced.
func bruteAudible(net *Network, i int) []int {
	var out []int
	for j := range net.order {
		if j == i {
			continue
		}
		r := net.cfg.csRangeM
		if r <= 0 || net.order[i].pos.DistanceTo(net.order[j].pos) <= r {
			out = append(out, j)
		}
	}
	return out
}

func TestGridAdjacencyMatchesBrute(t *testing.T) {
	for _, cs := range []float64{0, 7.5, 30} {
		for _, n := range []int{1, 10, 40, 120} {
			if cs <= 0 && n > 60 {
				// Unlimited audibility keeps the paper's 60-tone cap.
				continue
			}
			for seed := int64(1); seed <= 3; seed++ {
				net := scatterNetwork(t, n, cs, seed)
				net.mu.Lock()
				for i := range net.order {
					var got []int
					net.forEachAudibleLocked(i, func(j int) { got = append(got, j) })
					want := bruteAudible(net, i)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						net.mu.Unlock()
						t.Fatalf("cs=%g n=%d seed=%d node %d: grid %v != brute %v", cs, n, seed, i, got, want)
					}
				}
				net.mu.Unlock()
			}
		}
	}
}

// bruteConflicts counts, per model, which unresolved earlier pairs
// interfere with (tx, rx) under the original definition: shared node,
// unlimited range, or any cross distance within range.
func bruteInterferes(net *Network, a1, b1, a2, b2 int) bool {
	if a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2 {
		return true
	}
	r := net.cfg.csRangeM
	if r <= 0 {
		return true
	}
	p := func(i int) Position { return net.order[i].pos }
	return p(a1).DistanceTo(p(a2)) <= r || p(a1).DistanceTo(p(b2)) <= r ||
		p(b1).DistanceTo(p(a2)) <= r || p(b1).DistanceTo(p(b2)) <= r
}

// TestTicketEdgesMatchBrute registers a random stream of tickets,
// resolving a random subset as it goes, and checks after every step
// that each live ticket's wait count, forward edge list and admission
// readiness equal the brute-force recomputation over all unresolved
// predecessors — i.e. that targeted wakeups admit exactly when the
// old broadcast-and-rescan loop would have.
func TestTicketEdgesMatchBrute(t *testing.T) {
	for _, cs := range []float64{0, 30} {
		for seed := int64(1); seed <= 3; seed++ {
			net := scatterNetwork(t, 24, cs, seed)
			rng := rand.New(rand.NewSource(seed * 104729))
			net.mu.Lock()
			var live []*ticket
			check := func(step string) {
				for _, tk := range live {
					wantWaits := 0
					for _, u := range live {
						if u.seq < tk.seq && bruteInterferes(net, u.tx, u.rx, tk.tx, tk.rx) {
							wantWaits++
						}
					}
					if tk.waits != wantWaits {
						t.Fatalf("cs=%g seed=%d %s: ticket %d waits=%d, brute %d", cs, seed, step, tk.seq, tk.waits, wantWaits)
					}
					ready := false
					select {
					case <-tk.ready:
						ready = true
					default:
					}
					if ready != (wantWaits == 0) {
						t.Fatalf("cs=%g seed=%d %s: ticket %d ready=%v with %d unresolved conflicts", cs, seed, step, tk.seq, ready, wantWaits)
					}
				}
			}
			for step := 0; step < 60; step++ {
				if len(live) > 0 && rng.Intn(3) == 0 {
					// Resolve the oldest ready ticket, as the scheduler would.
					victim := live[0]
					net.resolveLocked(victim)
					live = live[1:]
				} else {
					tx := rng.Intn(len(net.order))
					rx := rng.Intn(len(net.order) - 1)
					if rx >= tx {
						rx++
					}
					live = append(live, net.registerTicketLocked(tx, rx))
				}
				check(fmt.Sprintf("step %d", step))
			}
			for len(live) > 0 {
				net.resolveLocked(live[0])
				live = live[1:]
				check("drain")
			}
			if len(net.tickets) != 0 {
				t.Fatalf("cs=%g seed=%d: %d tickets leaked", cs, seed, len(net.tickets))
			}
			net.mu.Unlock()
		}
	}
}

// bruteRouteLocked is the pre-index Dijkstra verbatim: linear
// extraction over every node, relaxation over every audible pair.
// Callers hold net.mu.
func bruteRouteLocked(net *Network, src, dst int) ([]int, error) {
	const unreached = math.MaxFloat64
	nn := len(net.order)
	cost := make([]float64, nn)
	hops := make([]int, nn)
	lenM := make([]float64, nn)
	prev := make([]int, nn)
	done := make([]bool, nn)
	for i := range cost {
		cost[i] = unreached
		prev[i] = -1
	}
	cost[src], hops[src], lenM[src] = 0, 0, 0
	better := func(c float64, h int, l float64, at int, than int) bool {
		switch {
		case c != cost[than]:
			return c < cost[than]
		case h != hops[than]:
			return h < hops[than]
		case l != lenM[than]:
			return l < lenM[than]
		}
		return at < prev[than]
	}
	for {
		u := -1
		for i := 0; i < nn; i++ {
			if done[i] || cost[i] == unreached {
				continue
			}
			if u < 0 || cost[i] < cost[u] ||
				(cost[i] == cost[u] && (hops[i] < hops[u] ||
					(hops[i] == hops[u] && (lenM[i] < lenM[u] ||
						(lenM[i] == lenM[u] && i < u))))) {
				u = i
			}
		}
		if u < 0 || u == dst {
			break
		}
		done[u] = true
		for v := 0; v < nn; v++ {
			if done[v] || !net.audibleLocked(u, v) {
				continue
			}
			w, err := net.hopWeightLocked(u, v)
			if err != nil {
				return nil, err
			}
			c := cost[u] + w
			h := hops[u] + 1
			l := lenM[u] + net.order[u].pos.DistanceTo(net.order[v].pos)
			if c < cost[v] || (c == cost[v] && better(c, h, l, u, v)) {
				cost[v], hops[v], lenM[v], prev[v] = c, h, l, u
			}
		}
	}
	if cost[dst] == unreached {
		return nil, ErrNoRoute
	}
	var path []int
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

func TestRouteMatchesBruteDijkstra(t *testing.T) {
	cases := []struct {
		n      int
		cs     float64
		policy RoutingPolicy
	}{
		{40, 20, MinHop},
		{120, 15, MinHop},
		{16, 20, MinETX},
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 2; seed++ {
			net := scatterNetwork(t, c.n, c.cs, seed, WithRouting(c.policy))
			net.mu.Lock()
			rng := rand.New(rand.NewSource(seed * 31337))
			for trial := 0; trial < 40; trial++ {
				src := rng.Intn(c.n)
				dst := rng.Intn(c.n - 1)
				if dst >= src {
					dst++
				}
				got, gotErr := net.routeLocked(src, dst)
				want, wantErr := bruteRouteLocked(net, src, dst)
				if (gotErr == nil) != (wantErr == nil) {
					net.mu.Unlock()
					t.Fatalf("%v n=%d seed=%d %d->%d: err %v vs brute %v", c.policy, c.n, seed, src, dst, gotErr, wantErr)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					net.mu.Unlock()
					t.Fatalf("%v n=%d seed=%d %d->%d: path %v != brute %v", c.policy, c.n, seed, src, dst, got, want)
				}
			}
			net.mu.Unlock()
		}
	}
}

// TestJoinInvalidatesRoutesIncrementally pins the incremental route
// -cache invalidation: a join must drop exactly the cached paths it
// could have improved, keep the rest (and the ETX weight cache)
// intact, and leave every subsequent Route identical to a network
// built from scratch with the full geometry.
func TestJoinInvalidatesRoutesIncrementally(t *testing.T) {
	// Detour geometry: S and T are 50 m apart (inaudible at the 30 m
	// range) and initially connected only over the arc A-B-C; the late
	// joiner X sits between them and shortcuts S-X-T.
	lay := map[DeviceID]Position{
		0: {X: 0, Z: 1},         // S
		1: {X: 0, Y: 28, Z: 1},  // A
		2: {X: 25, Y: 42, Z: 1}, // B
		3: {X: 50, Y: 28, Z: 1}, // C
		4: {X: 50, Z: 1},        // T
	}
	joinOrder := []DeviceID{0, 1, 2, 3, 4}
	build := func(withX bool) *Network {
		net, err := NewNetwork(Bridge, WithNetworkSeed(5), WithCSRange(30))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range joinOrder {
			if _, err := net.Join(id, lay[id]); err != nil {
				t.Fatal(err)
			}
		}
		if withX {
			if _, err := net.Join(5, Position{X: 25, Z: 1}); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}

	net := build(false)
	long, err := net.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(long) != 5 {
		t.Fatalf("pre-join S->T path %v, want the 4-hop arc", long)
	}
	if _, err := net.Route(1, 2); err != nil { // A->B, untouched by X
		t.Fatal(err)
	}
	net.mu.Lock()
	cachedBefore := len(net.routeCache)
	net.mu.Unlock()
	if cachedBefore == 0 {
		t.Fatal("route cache empty after two Route calls")
	}

	if _, err := net.Join(5, Position{X: 25, Z: 1}); err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	_, stHeld := net.routeCache[[2]int{0, 4}]
	_, abHeld := net.routeCache[[2]int{1, 2}]
	net.mu.Unlock()
	if stHeld {
		t.Fatal("S->T survived a join that shortcuts it")
	}
	if !abHeld {
		t.Fatal("A->B was invalidated by a join that cannot improve it")
	}

	short, err := net.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []DeviceID{0, 5, 4}
	if fmt.Sprint(short) != fmt.Sprint(want) {
		t.Fatalf("post-join S->T = %v, want %v", short, want)
	}
	// Late join must equal a from-scratch build of the same geometry.
	fresh := build(true)
	for _, pair := range [][2]DeviceID{{0, 4}, {1, 2}, {0, 3}, {2, 4}} {
		a, err1 := net.Route(pair[0], pair[1])
		b, err2 := fresh.Route(pair[0], pair[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("route %v: %v / %v", pair, err1, err2)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("route %v: late-join %v != fresh %v", pair, a, b)
		}
	}
}

// TestJoinKeepsETXCache pins the companion fix: ETX pair weights are
// geometry-local and must survive joins untouched.
func TestJoinKeepsETXCache(t *testing.T) {
	net := scatterNetwork(t, 12, 25, 9, WithRouting(MinETX))
	// The scatter may partition: warm the cache with whichever pairs
	// actually route.
	routed := 0
	for dst := DeviceID(1); dst < 12; dst++ {
		if _, err := net.Route(0, dst); err == nil {
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("node 0 routes to no one; scatter unusable")
	}
	net.mu.Lock()
	before := make(map[[2]int]float64, len(net.etxCache))
	for k, v := range net.etxCache {
		before[k] = v
	}
	net.mu.Unlock()
	if len(before) == 0 {
		t.Fatal("ETX cache empty after a MinETX route")
	}
	if _, err := net.Join(12, Position{X: -40, Y: -40, Z: 1}); err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	defer net.mu.Unlock()
	for k, v := range before {
		got, ok := net.etxCache[k]
		if !ok || got != v {
			t.Fatalf("ETX weight %v changed across join: had %g, now %g (present %v)", k, v, got, ok)
		}
	}
}
