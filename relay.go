package aquago

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// This file is the store-and-forward relay layer over routing
// (route.go): walking a path hop by hop on the shared virtual
// timeline. Every hop is a full carrier-sense Send — the relay
// contends for the channel through the conflict-graph scheduler like
// any other transmitter, and its forward cannot start before the
// packet physically reached it (the previous hop's last attempt left
// the air, plus a turnaround). Bulk transfer chunks an arbitrary
// payload into the protocol's 16-bit packets; every packet of every
// hop runs the full adaptive exchange, so the band re-adapts
// per packet as the channel evolves — the AquaScope-style workload.

// relayTurnaroundS is a relay's store-and-forward processing pause:
// the gap between hearing a packet's last sample and being ready to
// contend for the next hop (matches the protocol's inter-send gap).
const relayTurnaroundS = interSendGapS

// RelayResult reports one multi-hop message delivery (SendVia).
type RelayResult struct {
	// Path is the walked relay path (source first, destination last).
	Path []DeviceID
	// Hops holds the per-hop send results, in path order. On failure
	// it covers the hops up to and including the failed one.
	Hops []SendResult
	// Attempts totals the physical transmission attempts across hops.
	Attempts int
	// DeliveredS is the virtual time the payload's last sample reached
	// the destination (zero when the transfer died mid-path).
	DeliveredS float64
}

// BulkResult reports a bulk payload transfer (SendBulk, SendBulkVia).
type BulkResult struct {
	// Path is the relay path as last walked: under motion (position
	// epochs) SendBulkVia re-routes mid-transfer when its next hop goes
	// inaudible or departs, so the final path may differ from the one
	// the transfer started on.
	Path []DeviceID
	// Packets is how many 2-byte protocol packets the payload split
	// into; DeliveredPackets how many arrived end-to-end (a failed
	// transfer stops at the first undeliverable packet).
	Packets, DeliveredPackets int
	// DeliveredBytes counts payload bytes that reached the
	// destination; Received holds them, hop-conserved by
	// construction: a hop only continues when its receiver's decode
	// was bit-exact (phy.Result.Delivered), so a relay never forwards
	// — and the destination never accumulates — corrupted bytes.
	DeliveredBytes int
	Received       []byte
	// Attempts totals physical transmission attempts across all
	// packets and hops, the link layer's own retries included.
	Attempts int
	// Retries counts relay-layer retransmissions: hop sends re-issued
	// after a transient failure (lost ACK, busy channel) under the
	// network's bulk retry budget (WithBulkRetries). Zero on a
	// transfer that never lost a packet.
	Retries int
	// Reroutes counts mid-transfer route repairs: hops whose next node
	// had moved out of earshot (or departed) by the time the packet
	// reached them, spliced onto a fresh routed path to the
	// destination. Always zero on a static network (SendBulkVia only
	// checks once a position epoch has occurred) and in the pipelined
	// transfer, whose path is fixed at launch.
	Reroutes int
	// Bands records the band each delivered packet's final hop used —
	// the per-packet re-adaptation trace (bands differ as the channel
	// evolves between packets).
	Bands []Band
	// PacketEndS records the virtual time each delivered packet's last
	// sample reached the destination, in packet order (parallel to
	// Bands). Progressive workloads read time-to-first-byte off it.
	PacketEndS []float64
	// StartS/EndS bound the transfer on the virtual timeline: the
	// source's clock when the transfer began, and the instant the last
	// delivered packet reached the destination.
	StartS, EndS float64
}

// validatePathLocked resolves an explicit relay path against the
// joined-node table: at least two nodes, every ID joined
// (ErrUnknownDevice), and no node visited twice (ErrBadPath — a
// repeated relay is a routing loop). Audibility is deliberately NOT
// enforced: an explicit path is the caller's override, and a hop
// beyond the carrier-sense range simply behaves like the real thing
// (the MAC cannot defer to it, the receiver probably cannot decode
// it). Callers hold n.mu.
func (n *Network) validatePathLocked(path []DeviceID) ([]*Node, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("%w: need source and destination, got %d node(s)", ErrBadPath, len(path))
	}
	nodes := make([]*Node, len(path))
	seen := make(map[DeviceID]bool, len(path))
	for i, id := range path {
		nd, ok := n.nodes[id]
		if !ok {
			return nil, fmt.Errorf("%w: %d (hop %d of path %v)", ErrUnknownDevice, id, i, path)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: node %d repeats in %v", ErrBadPath, id, path)
		}
		seen[id] = true
		nodes[i] = nd
	}
	return nodes, nil
}

// resolvePath validates an explicit path and returns its nodes.
func (n *Network) resolvePath(path []DeviceID) ([]*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.validatePathLocked(path)
}

// hopFailed decides whether a hop send left the payload at the next
// node. The store-and-forward criterion is possession, not
// acknowledgment: a hop whose every attempt went unACKed but whose
// payload decoded (ErrNoACK with Delivered — the two-generals cost)
// still armed the relay, so the transfer continues.
func hopFailed(res SendResult, err error) error {
	switch {
	case err != nil && !errors.Is(err, ErrNoACK):
		return err
	case !res.Delivered:
		if err != nil {
			return err
		}
		return ErrNoACK
	}
	return nil
}

// bulkRetryFloorS computes the virtual-clock ready floor for
// retransmission try+1 of a hop send that failed at endS: an
// exponential backoff in the transmitter's quantum (its adapted
// airtime when one exists, else the full-band worst case), from the
// attempt's end — or from the MAC's busy-until time when the channel
// never granted access, or the node's own clock when the send never
// reached the air at all.
func bulkRetryFloorS(nd *Node, endS float64, ferr error, try int) float64 {
	floor := endS
	var busy *ChannelBusyError
	if errors.As(ferr, &busy) && busy.BusyUntilS > floor {
		floor = busy.BusyUntilS
	}
	if floor == 0 {
		floor = nd.ClockS()
	}
	exp := try
	if exp > streamBackoffCap {
		exp = streamBackoffCap
	}
	return floor + nd.backoffQuantumS()*float64(int(1)<<exp)
}

// SendVia delivers one or two codebook messages along an explicit
// relay path: path[0] transmits to path[1], which stores and forwards
// to path[2], and so on, each hop re-entering the carrier-sense MAC
// on the shared virtual timeline (a relay cannot contend before the
// packet physically reached it). Stage events carry the hop context
// (StageEvent.Hop/PathHops), so a Trace sees the transfer walk the
// path in order.
//
// Path errors wrap ErrBadPath/ErrUnknownDevice. A hop failure returns
// a *RelayError naming the hop, wrapping the hop's own error
// (ErrNoACK, ErrChannelBusy, a cancelled context, ...); the returned
// RelayResult still describes the hops that ran. Use Route to compute
// a path, or Node.SendBulk for the automatic bulk flavor.
func (n *Network) SendVia(ctx context.Context, path []DeviceID, msgs ...uint8) (RelayResult, error) {
	if len(msgs) < 1 || len(msgs) > 2 {
		return RelayResult{}, fmt.Errorf("%w: send carries 1 or 2 messages, got %d", ErrBadMessage, len(msgs))
	}
	first := msgs[0]
	second := uint8(NoMessage)
	if len(msgs) == 2 {
		second = msgs[1]
	}
	nodes, err := n.resolvePath(path)
	if err != nil {
		return RelayResult{}, err
	}
	out := RelayResult{Path: append([]DeviceID(nil), path...)}
	hops := len(path) - 1
	for h := 0; h < hops; h++ {
		rc := relayCtx{hop: h, pathHops: hops}
		res, endS, err := nodes[h].sendWith(ctx, path[h+1], rc, 0, nil, first, second)
		out.Hops = append(out.Hops, res)
		out.Attempts += res.Attempts
		if ferr := hopFailed(res, err); ferr != nil {
			return out, &RelayError{Hop: h, From: path[h], To: path[h+1], Path: out.Path, Err: ferr}
		}
		if h+1 < hops {
			// The next relay possesses the payload once the last
			// attempt's final sample arrived; it may contend after a
			// turnaround.
			nodes[h+1].AdvanceClock(endS + relayTurnaroundS)
		} else {
			out.DeliveredS = endS
		}
	}
	return out, nil
}

// SendBulkVia transfers an arbitrary payload along an explicit relay
// path: the payload chunks into 2-byte protocol packets, and each
// packet store-and-forwards down the path — every hop a full adaptive
// exchange (fresh SNR estimate, fresh band), so the transfer
// re-adapts per packet and per hop. A relay forwards a packet only
// once its own receiver decoded it bit-exactly, so payload bytes are
// conserved hop to hop. Stage events carry both the hop and the
// packet context (StageEvent.BulkPkt/BulkPkts).
//
// A hop send that fails transiently — every attempt unACKed and
// undecoded, or the MAC never granting the channel — is retransmitted
// up to the network's bulk retry budget (WithBulkRetries, default
// DefaultBulkRetries), each retry re-entering the MAC after an
// exponentially backed virtual-clock floor; BulkResult.Retries counts
// them. Only an exhausted budget (or a non-transient failure: context
// cancelled, node left) kills the transfer.
//
// Under motion the transfer maintains its own route: before each hop
// send (and each retry), if a position epoch has moved the next node
// out of earshot of the packet's holder — or the next node departed —
// the remainder of the path is replaced by a fresh routed path from
// the holder to the destination (BulkResult.Reroutes counts these;
// Path reports the path as last walked). A spliced path may revisit an
// earlier node — physically honest store-and-forward when geometry
// shifted under the transfer. On a static network no epoch has
// occurred and no check runs, byte-identically to the pre-motion
// behavior. A repair that finds no route (ErrNoRoute) or a departed
// destination (ErrNodeLeft) kills the transfer like any hop failure.
//
// Odd-length payloads pad the final packet on the air; the pad byte
// never reaches Received. Errors follow SendVia's contract, with
// RelayError.Pkt naming the packet the path died on; the BulkResult
// reports everything delivered before that.
func (n *Network) SendBulkVia(ctx context.Context, path []DeviceID, payload []byte) (BulkResult, error) {
	nodes, err := n.resolvePath(path)
	if err != nil {
		return BulkResult{}, err
	}
	if len(payload) == 0 {
		return BulkResult{}, fmt.Errorf("%w: empty bulk payload", ErrBadMessage)
	}
	out := BulkResult{
		Path:    append([]DeviceID(nil), path...),
		Packets: (len(payload) + 1) / 2,
		StartS:  nodes[0].ClockS(),
	}
	for p := 0; p < out.Packets; p++ {
		chunk := [2]byte{payload[2*p], 0}
		padded := 2*p+2 > len(payload) // odd tail: second byte is padding
		if !padded {
			chunk[1] = payload[2*p+1]
		}
		// Motion can re-route mid-transfer, so the path (and hop count)
		// may change between — and within — hops; the loop bounds re-read
		// it each iteration.
		for h := 0; h < len(nodes)-1; h++ {
			var (
				res  SendResult
				endS float64
			)
			floor := 0.0
			for try := 0; ; try++ {
				// Route maintenance under motion: if a position epoch has
				// moved the next hop out of earshot (or it departed), splice
				// a fresh routed path to the destination before — or instead
				// of — burning the retry budget on an unreachable hop.
				spliced, changed, rerr := n.rerouteBulkHop(nodes, h)
				if rerr != nil {
					return out, &RelayError{Hop: h, From: path[h], To: path[h+1], Path: out.Path, Pkt: p, Err: rerr}
				}
				if changed {
					nodes = spliced
					path = make([]DeviceID, len(nodes))
					for i, nd := range nodes {
						path[i] = nd.id
					}
					out.Path = append([]DeviceID(nil), path...)
					out.Reroutes++
				}
				rc := relayCtx{hop: h, pathHops: len(nodes) - 1, bulkPkt: p, bulkPkts: out.Packets}
				var err error
				res, endS, err = nodes[h].sendWith(ctx, path[h+1], rc, floor, &chunk, 0, 0)
				out.Attempts += res.Attempts
				ferr := hopFailed(res, err)
				if ferr == nil {
					break
				}
				// Lost ACKs and busy channels are transient: retransmit
				// under the budget, backing off on the virtual clock so
				// the retry re-contends instead of hammering the channel.
				if !streamRetryable(ferr) || try >= n.cfg.bulkRetries {
					return out, &RelayError{Hop: h, From: path[h], To: path[h+1], Path: out.Path, Pkt: p, Err: ferr}
				}
				out.Retries++
				floor = bulkRetryFloorS(nodes[h], endS, ferr, try)
			}
			// The relay now possesses the chunk byte-exactly: a hop only
			// continues when some attempt *delivered*, and Delivered is
			// defined as a zero-bit-error decode (phy.Result), so
			// conservation holds hop to hop by construction. Each
			// attempt's raw decode — dirty ones included — is available
			// for audit on Result.Decoded.
			if h+1 < len(nodes)-1 {
				nodes[h+1].AdvanceClock(endS + relayTurnaroundS)
			} else {
				out.EndS = endS
				out.Bands = append(out.Bands, res.Last.Band)
				out.PacketEndS = append(out.PacketEndS, endS)
			}
		}
		out.DeliveredPackets++
		out.Received = append(out.Received, chunk[0])
		out.DeliveredBytes++
		if !padded {
			out.Received = append(out.Received, chunk[1])
			out.DeliveredBytes++
		}
	}
	return out, nil
}

// rerouteBulkHop is the relay layer's route maintenance under motion:
// called with a bulk transfer's current node path and the hop about to
// run, it checks — only once a position epoch has occurred, so static
// transfers never pay or change — whether nodes[h+1] is still a
// viable next hop (not departed, within earshot of nodes[h], the
// packet's holder). If not, it returns the path re-spliced at h: the
// walked prefix through nodes[h] plus a fresh routed path from there
// to the destination. The splice may revisit an earlier node — under
// changed geometry that is honest store-and-forward, not a loop (the
// no-repeat rule guards explicit caller paths only). A departed
// destination returns ErrNodeLeft; an unreachable one ErrNoRoute.
func (n *Network) rerouteBulkHop(nodes []*Node, h int) ([]*Node, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.geoEpoch == 0 {
		return nodes, false, nil
	}
	cur, next := nodes[h], nodes[h+1]
	if !next.departed && n.audibleLocked(cur.idx, next.idx) {
		return nodes, false, nil
	}
	dst := nodes[len(nodes)-1]
	if dst.departed {
		return nodes, false, fmt.Errorf("%w: destination %d", ErrNodeLeft, dst.id)
	}
	idxPath, err := n.routeLocked(cur.idx, dst.idx)
	if err != nil {
		return nodes, false, err
	}
	spliced := make([]*Node, 0, h+len(idxPath))
	spliced = append(spliced, nodes[:h+1]...)
	for _, idx := range idxPath[1:] {
		spliced = append(spliced, n.order[idx])
	}
	return spliced, true, nil
}

// SendBulk transfers an arbitrary payload to dst over the network's
// routed relay path (Route under the WithRouting policy; the direct
// single hop when dst is audible and the policy favors it). See
// SendBulkVia for the transfer semantics and error contract; routing
// failures additionally wrap ErrNoRoute.
func (nd *Node) SendBulk(ctx context.Context, dst DeviceID, payload []byte) (BulkResult, error) {
	path, err := nd.net.Route(nd.id, dst)
	if err != nil {
		return BulkResult{}, err
	}
	return nd.net.SendBulkVia(ctx, path, payload)
}

// bulkPipeline coordinates one pipelined bulk transfer: every hop of
// every packet is a queued job, and each completion's continuation
// (txJob.after, under the queue lock) forwards the packet to the next
// hop and admits the next packet at the source. Packets therefore
// overlap wherever hops do not interfere, while the dispatch gate
// keeps interfering hops in deterministic (priority, seq) order.
type bulkPipeline struct {
	n       *Network
	ctx     context.Context
	nodes   []*Node
	path    []DeviceID
	payload []byte
	hops    int

	out BulkResult
	// nextPkt is the next packet index to admit at hop 0; admission is
	// windowed (each hop-0 completion admits one more) so the source
	// queue holds at most the window regardless of payload size.
	nextPkt int
	// outstanding counts packets not yet terminal (delivered, failed,
	// or abandoned); done closes when it reaches zero.
	outstanding int
	done        chan struct{}
	finished    bool
	// active maps packet index -> its current hop's handle.
	active map[int]*TxHandle
	// hopTries counts a packet's retransmissions on its *current* hop
	// (cleared when the packet advances); pkts records each packet's
	// end-to-end outcome for the contiguous-prefix finalize.
	hopTries map[int]int
	pkts     []bulkPktRecord

	failed           bool
	cancelling       bool
	failPkt, failHop int
	failErr          error
}

// bulkPktRecord is one packet's end-to-end outcome in a pipelined
// transfer. Deliveries are recorded here rather than appended to
// Received directly: packets complete in packet order on the final
// hop, but a failure recorded at a low packet index must not let a
// higher packet that was already past the failed hop count as
// delivered payload — the finalize walks the records and keeps only
// the contiguous delivered prefix.
type bulkPktRecord struct {
	delivered bool
	chunk     [2]byte
	padded    bool
	band      Band
	endS      float64
}

// pipelineWindow is how many packets the source keeps admitted ahead:
// two keeps the source daemon busy across a completion boundary while
// bounding every queue on the path to O(window) jobs.
const pipelineWindow = 2

// SendBulkViaPipelined transfers an arbitrary payload along an
// explicit relay path through the async transmit subsystem: each
// relay store-and-forwards from its own transmit queue, so packet p+1
// crosses earlier hops while packet p crosses later ones, and
// non-interfering hops genuinely overlap on the air (on a long line,
// hops three apart clear each other's carrier-sense range). The
// per-hop semantics — possession criterion, byte conservation, band
// re-adaptation per packet and hop, turnaround before forwarding —
// match SendBulkVia exactly, and on paths where every hop interferes
// the result converges to the sequential transfer's.
//
// The transfer runs at TxBulk priority, so concurrent conversational
// sends overtake it at every hop. Transient hop failures retransmit
// under the network's bulk retry budget exactly as in SendBulkVia,
// the retry re-entering the relay's own queue with a backed-off
// virtual-clock floor. A hop whose budget runs out stops admission,
// withdraws the failed packet's successors, lets already-ahead
// packets finish, and returns a *RelayError naming the first failed
// packet and hop; Received then holds the contiguous delivered prefix
// — a packet that was already past the failed hop, or even delivered
// end-to-end behind the failure, never counts as delivered payload.
// Cancelling ctx aborts the transfer the same way.
//
// Unlike SendBulkVia, the pipelined transfer's path is fixed at
// launch: packets at different hops would otherwise disagree about
// the path, and a splice racing in-flight jobs would break the
// deterministic dispatch order. Under motion, re-route between
// pipelined transfers (Route reflects each position epoch); a hop
// whose geometry walked away mid-transfer fails through the normal
// retry budget.
func (n *Network) SendBulkViaPipelined(ctx context.Context, path []DeviceID, payload []byte) (BulkResult, error) {
	nodes, err := n.resolvePath(path)
	if err != nil {
		return BulkResult{}, err
	}
	if len(payload) == 0 {
		return BulkResult{}, fmt.Errorf("%w: empty bulk payload", ErrBadMessage)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tr := &bulkPipeline{
		n: n, ctx: ctx, nodes: nodes,
		path: append([]DeviceID(nil), path...), payload: payload,
		hops:     len(path) - 1,
		done:     make(chan struct{}),
		active:   make(map[int]*TxHandle),
		hopTries: make(map[int]int),
	}
	tr.out = BulkResult{
		Path:    tr.path,
		Packets: (len(payload) + 1) / 2,
		StartS:  nodes[0].ClockS(),
	}
	tr.pkts = make([]bulkPktRecord, tr.out.Packets)
	tr.outstanding = tr.out.Packets
	window := pipelineWindow
	if window > n.cfg.txQueueCap {
		window = n.cfg.txQueueCap
	}
	n.tx.mu.Lock()
	for i := 0; i < window && !tr.failed; i++ {
		tr.admitLocked()
	}
	n.txEvaluateLocked()
	tr.finishIfDoneLocked()
	n.tx.mu.Unlock()
	// Every admitted job carries ctx, and failures stop admission, so
	// the pipeline always drains: no select on ctx needed here.
	<-tr.done
	tr.finalize()
	if tr.failed {
		return tr.out, &RelayError{
			Hop: tr.failHop, From: tr.path[tr.failHop], To: tr.path[tr.failHop+1],
			Path: tr.out.Path, Pkt: tr.failPkt, Err: tr.failErr,
		}
	}
	return tr.out, nil
}

// SendBulkPipelined is SendBulk through the pipelined transfer: route
// to dst, then SendBulkViaPipelined along the path.
func (nd *Node) SendBulkPipelined(ctx context.Context, dst DeviceID, payload []byte) (BulkResult, error) {
	path, err := nd.net.Route(nd.id, dst)
	if err != nil {
		return BulkResult{}, err
	}
	return nd.net.SendBulkViaPipelined(ctx, path, payload)
}

// chunk extracts packet p's 2-byte payload chunk and whether its
// second byte is padding.
func (tr *bulkPipeline) chunk(p int) (chunk [2]byte, padded bool) {
	chunk[0] = tr.payload[2*p]
	padded = 2*p+2 > len(tr.payload)
	if !padded {
		chunk[1] = tr.payload[2*p+1]
	}
	return chunk, padded
}

// admitLocked enqueues the next packet's hop-0 job (tx.mu held).
func (tr *bulkPipeline) admitLocked() {
	if tr.nextPkt >= tr.out.Packets || tr.failed {
		return
	}
	p := tr.nextPkt
	tr.nextPkt++
	tr.enqueueHopLocked(0, p, 0)
}

// enqueueHopLocked queues packet p's hop job with the given ready
// floor; an enqueue rejection (queue full, node left) is a hop
// failure (tx.mu held).
func (tr *bulkPipeline) enqueueHopLocked(hop, p int, notBeforeS float64) {
	chunk, padded := tr.chunk(p)
	raw := chunk
	rc := relayCtx{hop: hop, pathHops: tr.hops, bulkPkt: p, bulkPkts: tr.out.Packets}
	h, err := tr.n.txEnqueueLocked(
		tr.nodes[hop], tr.nodes[hop+1], TxBulk, notBeforeS, &raw, 0, 0,
		rc, tr.ctx, nil, tr.hopDone(hop, p, chunk, padded))
	if err != nil {
		tr.outstanding--
		tr.recordFailureLocked(p, hop, err)
		tr.finishIfDoneLocked()
		return
	}
	tr.active[p] = h
}

// hopDone builds the continuation for packet p's hop job. It runs
// under tx.mu inside completion processing, atomically before any
// newly unblocked job dispatches.
func (tr *bulkPipeline) hopDone(hop, p int, chunk [2]byte, padded bool) func(TxDelivery) {
	return func(d TxDelivery) {
		tr.out.Attempts += d.Result.Attempts
		delete(tr.active, p)
		ferr := hopFailed(d.Result, d.Err)
		if ferr == nil && hop == 0 {
			// The source finished packet p's first hop: admit the next
			// packet to keep the window full. Deferred so the forward in
			// the switch below enqueues FIRST and takes the older
			// dispatch key — otherwise the source's ever-younger hop-0
			// jobs would starve every relay behind them and the pipeline
			// would degenerate into "blast hop 0, then drain".
			defer tr.admitLocked()
		}
		switch {
		case ferr != nil && tr.failed && p > tr.failPkt:
			// The transfer already died at an earlier packet while this
			// one was on the air; abandon it rather than retry.
			tr.outstanding--
		case ferr != nil && streamRetryable(ferr) && tr.hopTries[p] < tr.n.cfg.bulkRetries:
			// Transient loss: retransmit this hop under the budget,
			// re-entering the relay's queue with a backed-off floor so
			// the retry re-contends instead of hammering the channel.
			try := tr.hopTries[p]
			tr.hopTries[p] = try + 1
			tr.out.Retries++
			tr.enqueueHopLocked(hop, p, bulkRetryFloorS(tr.nodes[hop], d.EndS, ferr, try))
		case ferr != nil:
			tr.outstanding--
			tr.recordFailureLocked(p, hop, ferr)
		case tr.failed && p > tr.failPkt:
			// The transfer already died at an earlier packet while this
			// one was on the air; abandon it.
			tr.outstanding--
		case hop+1 < tr.hops:
			// Forward: the next relay possesses the packet once the last
			// attempt's final sample arrived, and may contend after a
			// turnaround. The retry counter restarts per hop.
			delete(tr.hopTries, p)
			tr.enqueueHopLocked(hop+1, p, d.EndS+relayTurnaroundS)
		default:
			// Reached the destination. Record the outcome; the finalize
			// keeps only the contiguous delivered prefix, so a packet
			// that beat an earlier failure end-to-end never counts.
			tr.outstanding--
			delete(tr.hopTries, p)
			tr.pkts[p] = bulkPktRecord{
				delivered: true, chunk: chunk, padded: padded,
				band: d.Result.Last.Band, endS: d.EndS,
			}
		}
		tr.finishIfDoneLocked()
	}
}

// finalize folds the per-packet records into the public BulkResult
// after the pipeline drained: Received/Bands/PacketEndS accumulate
// the contiguous delivered prefix, in packet order, stopping at the
// first packet that is not delivered end-to-end (on a failed transfer
// that is at latest the failed packet). Runs unlocked — the transfer
// is done and the records are immutable.
func (tr *bulkPipeline) finalize() {
	for p := 0; p < tr.out.Packets; p++ {
		r := tr.pkts[p]
		if !r.delivered {
			break
		}
		tr.out.DeliveredPackets++
		tr.out.Received = append(tr.out.Received, r.chunk[0])
		tr.out.DeliveredBytes++
		if !r.padded {
			tr.out.Received = append(tr.out.Received, r.chunk[1])
			tr.out.DeliveredBytes++
		}
		tr.out.Bands = append(tr.out.Bands, r.band)
		tr.out.PacketEndS = append(tr.out.PacketEndS, r.endS)
		if r.endS > tr.out.EndS {
			tr.out.EndS = r.endS
		}
	}
}

// recordFailureLocked notes a hop failure, keeping the lowest failed
// packet as the transfer's reported failure, stopping admission, and
// withdrawing queued successors (tx.mu held).
func (tr *bulkPipeline) recordFailureLocked(p, hop int, err error) {
	switch {
	case !tr.failed:
		tr.failed = true
		tr.failPkt, tr.failHop, tr.failErr = p, hop, err
		// Unadmitted packets never run; account them terminal now.
		tr.outstanding -= tr.out.Packets - tr.nextPkt
		tr.nextPkt = tr.out.Packets
		tr.cancelTrailingLocked()
	case p < tr.failPkt:
		tr.failPkt, tr.failHop, tr.failErr = p, hop, err
		tr.cancelTrailingLocked()
	}
}

// cancelTrailingLocked withdraws every still-queued job of packets
// after the failed one; inflight jobs get their context cancelled and
// resolve through their own completions. Cancelling a queued job runs
// its continuation synchronously (which re-enters the failure path),
// so the scan restarts until a pass makes no change.
func (tr *bulkPipeline) cancelTrailingLocked() {
	if tr.cancelling {
		return
	}
	tr.cancelling = true
	for changed := true; changed; {
		changed = false
		// Withdrawals resolve handles and land on the delivery queue as
		// they run, so the scan order is user-visible (Deliveries,
		// OnDone order): cancel in packet-index order, not the map's
		// randomized one.
		pkts := make([]int, 0, len(tr.active))
		for p := range tr.active {
			pkts = append(pkts, p)
		}
		sort.Ints(pkts)
		for _, p := range pkts {
			h := tr.active[p]
			if p <= tr.failPkt {
				continue
			}
			if h.job.state == txQueued {
				tr.n.txCancelQueuedLocked(h.job, fmt.Errorf("%w: bulk transfer failed at packet %d", ErrTxCancelled, tr.failPkt))
				changed = true
				break
			}
			if h.job.state == txInflight && !h.job.cancelled {
				h.job.cancelled = true
				h.job.cancel()
			}
		}
	}
	tr.cancelling = false
}

// finishIfDoneLocked closes the transfer once every packet is
// terminal (tx.mu held).
func (tr *bulkPipeline) finishIfDoneLocked() {
	if tr.outstanding == 0 && !tr.finished {
		tr.finished = true
		close(tr.done)
	}
}
