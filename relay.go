package aquago

import (
	"context"
	"errors"
	"fmt"
)

// This file is the store-and-forward relay layer over routing
// (route.go): walking a path hop by hop on the shared virtual
// timeline. Every hop is a full carrier-sense Send — the relay
// contends for the channel through the conflict-graph scheduler like
// any other transmitter, and its forward cannot start before the
// packet physically reached it (the previous hop's last attempt left
// the air, plus a turnaround). Bulk transfer chunks an arbitrary
// payload into the protocol's 16-bit packets; every packet of every
// hop runs the full adaptive exchange, so the band re-adapts
// per packet as the channel evolves — the AquaScope-style workload.

// relayTurnaroundS is a relay's store-and-forward processing pause:
// the gap between hearing a packet's last sample and being ready to
// contend for the next hop (matches the protocol's inter-send gap).
const relayTurnaroundS = interSendGapS

// RelayResult reports one multi-hop message delivery (SendVia).
type RelayResult struct {
	// Path is the walked relay path (source first, destination last).
	Path []DeviceID
	// Hops holds the per-hop send results, in path order. On failure
	// it covers the hops up to and including the failed one.
	Hops []SendResult
	// Attempts totals the physical transmission attempts across hops.
	Attempts int
	// DeliveredS is the virtual time the payload's last sample reached
	// the destination (zero when the transfer died mid-path).
	DeliveredS float64
}

// BulkResult reports a bulk payload transfer (SendBulk, SendBulkVia).
type BulkResult struct {
	// Path is the walked relay path (source first, destination last).
	Path []DeviceID
	// Packets is how many 2-byte protocol packets the payload split
	// into; DeliveredPackets how many arrived end-to-end (a failed
	// transfer stops at the first undeliverable packet).
	Packets, DeliveredPackets int
	// DeliveredBytes counts payload bytes that reached the
	// destination; Received holds them, hop-conserved by
	// construction: a hop only continues when its receiver's decode
	// was bit-exact (phy.Result.Delivered), so a relay never forwards
	// — and the destination never accumulates — corrupted bytes.
	DeliveredBytes int
	Received       []byte
	// Attempts totals physical transmission attempts across all
	// packets and hops.
	Attempts int
	// Bands records the band each delivered packet's final hop used —
	// the per-packet re-adaptation trace (bands differ as the channel
	// evolves between packets).
	Bands []Band
	// StartS/EndS bound the transfer on the virtual timeline: the
	// source's clock when the transfer began, and the instant the last
	// delivered packet reached the destination.
	StartS, EndS float64
}

// validatePathLocked resolves an explicit relay path against the
// joined-node table: at least two nodes, every ID joined
// (ErrUnknownDevice), and no node visited twice (ErrBadPath — a
// repeated relay is a routing loop). Audibility is deliberately NOT
// enforced: an explicit path is the caller's override, and a hop
// beyond the carrier-sense range simply behaves like the real thing
// (the MAC cannot defer to it, the receiver probably cannot decode
// it). Callers hold n.mu.
func (n *Network) validatePathLocked(path []DeviceID) ([]*Node, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("%w: need source and destination, got %d node(s)", ErrBadPath, len(path))
	}
	nodes := make([]*Node, len(path))
	seen := make(map[DeviceID]bool, len(path))
	for i, id := range path {
		nd, ok := n.nodes[id]
		if !ok {
			return nil, fmt.Errorf("%w: %d (hop %d of path %v)", ErrUnknownDevice, id, i, path)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: node %d repeats in %v", ErrBadPath, id, path)
		}
		seen[id] = true
		nodes[i] = nd
	}
	return nodes, nil
}

// resolvePath validates an explicit path and returns its nodes.
func (n *Network) resolvePath(path []DeviceID) ([]*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.validatePathLocked(path)
}

// hopFailed decides whether a hop send left the payload at the next
// node. The store-and-forward criterion is possession, not
// acknowledgment: a hop whose every attempt went unACKed but whose
// payload decoded (ErrNoACK with Delivered — the two-generals cost)
// still armed the relay, so the transfer continues.
func hopFailed(res SendResult, err error) error {
	switch {
	case err != nil && !errors.Is(err, ErrNoACK):
		return err
	case !res.Delivered:
		if err != nil {
			return err
		}
		return ErrNoACK
	}
	return nil
}

// SendVia delivers one or two codebook messages along an explicit
// relay path: path[0] transmits to path[1], which stores and forwards
// to path[2], and so on, each hop re-entering the carrier-sense MAC
// on the shared virtual timeline (a relay cannot contend before the
// packet physically reached it). Stage events carry the hop context
// (StageEvent.Hop/PathHops), so a Trace sees the transfer walk the
// path in order.
//
// Path errors wrap ErrBadPath/ErrUnknownDevice. A hop failure returns
// a *RelayError naming the hop, wrapping the hop's own error
// (ErrNoACK, ErrChannelBusy, a cancelled context, ...); the returned
// RelayResult still describes the hops that ran. Use Route to compute
// a path, or Node.SendBulk for the automatic bulk flavor.
func (n *Network) SendVia(ctx context.Context, path []DeviceID, msgs ...uint8) (RelayResult, error) {
	if len(msgs) < 1 || len(msgs) > 2 {
		return RelayResult{}, fmt.Errorf("%w: send carries 1 or 2 messages, got %d", ErrBadMessage, len(msgs))
	}
	first := msgs[0]
	second := uint8(NoMessage)
	if len(msgs) == 2 {
		second = msgs[1]
	}
	nodes, err := n.resolvePath(path)
	if err != nil {
		return RelayResult{}, err
	}
	out := RelayResult{Path: append([]DeviceID(nil), path...)}
	hops := len(path) - 1
	for h := 0; h < hops; h++ {
		rc := relayCtx{hop: h, pathHops: hops}
		res, endS, err := nodes[h].sendWith(ctx, path[h+1], rc, nil, first, second)
		out.Hops = append(out.Hops, res)
		out.Attempts += res.Attempts
		if ferr := hopFailed(res, err); ferr != nil {
			return out, &RelayError{Hop: h, From: path[h], To: path[h+1], Path: out.Path, Err: ferr}
		}
		if h+1 < hops {
			// The next relay possesses the payload once the last
			// attempt's final sample arrived; it may contend after a
			// turnaround.
			nodes[h+1].AdvanceClock(endS + relayTurnaroundS)
		} else {
			out.DeliveredS = endS
		}
	}
	return out, nil
}

// SendBulkVia transfers an arbitrary payload along an explicit relay
// path: the payload chunks into 2-byte protocol packets, and each
// packet store-and-forwards down the path — every hop a full adaptive
// exchange (fresh SNR estimate, fresh band), so the transfer
// re-adapts per packet and per hop. A relay forwards a packet only
// once its own receiver decoded it bit-exactly, so payload bytes are
// conserved hop to hop. Stage events carry both the hop and the
// packet context (StageEvent.BulkPkt/BulkPkts).
//
// Odd-length payloads pad the final packet on the air; the pad byte
// never reaches Received. Errors follow SendVia's contract, with
// RelayError.Pkt naming the packet the path died on; the BulkResult
// reports everything delivered before that.
func (n *Network) SendBulkVia(ctx context.Context, path []DeviceID, payload []byte) (BulkResult, error) {
	nodes, err := n.resolvePath(path)
	if err != nil {
		return BulkResult{}, err
	}
	if len(payload) == 0 {
		return BulkResult{}, fmt.Errorf("%w: empty bulk payload", ErrBadMessage)
	}
	out := BulkResult{
		Path:    append([]DeviceID(nil), path...),
		Packets: (len(payload) + 1) / 2,
		StartS:  nodes[0].ClockS(),
	}
	hops := len(path) - 1
	for p := 0; p < out.Packets; p++ {
		chunk := [2]byte{payload[2*p], 0}
		padded := 2*p+2 > len(payload) // odd tail: second byte is padding
		if !padded {
			chunk[1] = payload[2*p+1]
		}
		for h := 0; h < hops; h++ {
			rc := relayCtx{hop: h, pathHops: hops, bulkPkt: p, bulkPkts: out.Packets}
			res, endS, err := nodes[h].sendWith(ctx, path[h+1], rc, &chunk, 0, 0)
			out.Attempts += res.Attempts
			if ferr := hopFailed(res, err); ferr != nil {
				return out, &RelayError{Hop: h, From: path[h], To: path[h+1], Path: out.Path, Pkt: p, Err: ferr}
			}
			// The relay now possesses the chunk byte-exactly: a hop only
			// continues when some attempt *delivered*, and Delivered is
			// defined as a zero-bit-error decode (phy.Result), so
			// conservation holds hop to hop by construction. Each
			// attempt's raw decode — dirty ones included — is available
			// for audit on Result.Decoded.
			if h+1 < hops {
				nodes[h+1].AdvanceClock(endS + relayTurnaroundS)
			} else {
				out.EndS = endS
				out.Bands = append(out.Bands, res.Last.Band)
			}
		}
		out.DeliveredPackets++
		out.Received = append(out.Received, chunk[0])
		out.DeliveredBytes++
		if !padded {
			out.Received = append(out.Received, chunk[1])
			out.DeliveredBytes++
		}
	}
	return out, nil
}

// SendBulk transfers an arbitrary payload to dst over the network's
// routed relay path (Route under the WithRouting policy; the direct
// single hop when dst is audible and the policy favors it). See
// SendBulkVia for the transfer semantics and error contract; routing
// failures additionally wrap ErrNoRoute.
func (nd *Node) SendBulk(ctx context.Context, dst DeviceID, payload []byte) (BulkResult, error) {
	path, err := nd.net.Route(nd.id, dst)
	if err != nil {
		return BulkResult{}, err
	}
	return nd.net.SendBulkVia(ctx, path, payload)
}
