package aquago_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"aquago"
)

// drainDeliveries consumes the network's delivery queue into a
// time-ordered slice for later assertions. Call stop() only after the
// traffic of interest drained (Flush) — the collector keeps the pump
// from stalling on a full channel in the meantime.
func drainDeliveries(ch <-chan aquago.TxDelivery) (got func() []aquago.TxDelivery, stop func()) {
	var mu sync.Mutex
	var all []aquago.TxDelivery
	done := make(chan struct{})
	go func() {
		for {
			select {
			case d := <-ch:
				mu.Lock()
				all = append(all, d)
				mu.Unlock()
			case <-done:
				return
			}
		}
	}()
	got = func() []aquago.TxDelivery {
		mu.Lock()
		defer mu.Unlock()
		return append([]aquago.TxDelivery(nil), all...)
	}
	return got, func() { close(done) }
}

// TestSendAsyncMatchesBlockingSend pins the queued path to the
// blocking one: the same exchange on identically seeded networks
// produces byte-identical SendResults whether it ran through
// Node.Send or through the transmit queue.
func TestSendAsyncMatchesBlockingSend(t *testing.T) {
	okMsg, _ := aquago.LookupMessage("OK?")
	upMsg, _ := aquago.LookupMessage("Go up")

	_, _, a1, _ := buildTriangle(t, 17)
	blocking, err := a1.Send(context.Background(), 0, okMsg.ID, upMsg.ID)
	if err != nil {
		t.Fatal(err)
	}

	_, _, a2, _ := buildTriangle(t, 17)
	h, err := a2.SendAsync(context.Background(), 0, okMsg.ID, upMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blocking, queued) {
		t.Fatalf("queued send diverged from blocking send:\nblocking %+v\nqueued   %+v", blocking, queued)
	}
	if h.TxID() == 0 {
		t.Fatal("handle TxID is 0; queued sends must stamp a nonzero ID")
	}
	if h.EndS() <= 0 {
		t.Fatalf("handle EndS = %g, want > 0 after delivery", h.EndS())
	}
}

// TestTxQueueFIFOWithinPriority enqueues a mixed-priority burst on
// one node and asserts the queue's ordering contract: within each
// priority, jobs complete in enqueue order, and a high-priority job
// enqueued last still overtakes queued bulk work.
func TestTxQueueFIFOWithinPriority(t *testing.T) {
	net, _, a, _ := buildTriangle(t, 23)
	ch := net.Deliveries()
	got, stop := drainDeliveries(ch)
	defer stop()

	okMsg, _ := aquago.LookupMessage("OK?")
	plan := []aquago.TxPriority{
		aquago.TxBulk, aquago.TxBulk, aquago.TxNormal,
		aquago.TxHigh, aquago.TxNormal, aquago.TxBulk,
	}
	ids := make(map[uint64]aquago.TxPriority, len(plan))
	var lastBulk, highID uint64
	for _, pri := range plan {
		h, err := a.Enqueue(context.Background(), aquago.TxJob{
			Dst: 0, Msgs: []uint8{okMsg.ID}, Priority: pri,
		})
		if err != nil {
			t.Fatalf("enqueue %v: %v", pri, err)
		}
		ids[h.TxID()] = pri
		if pri == aquago.TxBulk {
			lastBulk = h.TxID()
		}
		if pri == aquago.TxHigh {
			highID = h.TxID()
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := net.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var order []aquago.TxDelivery
	for len(order) < len(plan) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d deliveries arrived", len(order), len(plan))
		}
		order = got()
		time.Sleep(5 * time.Millisecond)
	}
	lastPerPri := map[aquago.TxPriority]uint64{}
	highPos, lastBulkPos := -1, -1
	for i, d := range order {
		if d.Err != nil {
			t.Fatalf("delivery %d (tx %d) failed: %v", i, d.TxID, d.Err)
		}
		if want, ok := ids[d.TxID]; !ok || want != d.Priority {
			t.Fatalf("delivery %d: unexpected tx %d priority %v", i, d.TxID, d.Priority)
		}
		if prev := lastPerPri[d.Priority]; d.TxID < prev {
			t.Fatalf("priority %v completed out of FIFO order: tx %d after tx %d", d.Priority, d.TxID, prev)
		}
		lastPerPri[d.Priority] = d.TxID
		if d.TxID == highID {
			highPos = i
		}
		if d.TxID == lastBulk {
			lastBulkPos = i
		}
	}
	if highPos > lastBulkPos {
		t.Fatalf("high-priority job completed at %d, after bulk job at %d", highPos, lastBulkPos)
	}
}

// TestEnqueueValidation walks the enqueue-time error taxonomy.
func TestEnqueueValidation(t *testing.T) {
	_, _, a, _ := buildTriangle(t, 5, aquago.WithTxQueueCapacity(1))
	okMsg, _ := aquago.LookupMessage("OK?")
	ctx := context.Background()

	if _, err := a.Enqueue(ctx, aquago.TxJob{Dst: 0}); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("empty job: err = %v, want ErrBadMessage", err)
	}
	raw := [2]byte{1, 2}
	if _, err := a.Enqueue(ctx, aquago.TxJob{Dst: 0, Msgs: []uint8{okMsg.ID}, Raw: &raw}); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("msgs+raw: err = %v, want ErrBadMessage", err)
	}
	if _, err := a.Enqueue(ctx, aquago.TxJob{Dst: 0, Msgs: []uint8{okMsg.ID}, Priority: aquago.TxPriority(9)}); !errors.Is(err, aquago.ErrBadMessage) {
		t.Fatalf("bad priority: err = %v, want ErrBadMessage", err)
	}
	if _, err := a.SendAsync(ctx, 99, okMsg.ID); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("unknown dst: err = %v, want ErrUnknownDevice", err)
	}

	// Capacity 1: the first job dispatches straight to the daemon, the
	// second occupies the queue, the third must bounce.
	h1, err := a.SendAsync(ctx, 0, okMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := a.SendAsync(ctx, 0, okMsg.ID)
	if err != nil {
		t.Fatalf("second enqueue should queue, got %v", err)
	}
	if _, err := a.SendAsync(ctx, 0, okMsg.ID); !errors.Is(err, aquago.ErrQueueFull) {
		t.Fatalf("third enqueue: err = %v, want ErrQueueFull", err)
	}
	for _, h := range []*aquago.TxHandle{h1, h2} {
		if _, err := h.Wait(ctx); err != nil {
			t.Fatalf("tx %d: %v", h.TxID(), err)
		}
	}
}

// TestTxHandleCancelQueued cancels a job that never reached the radio
// and expects an immediate ErrTxCancelled with a zero result.
func TestTxHandleCancelQueued(t *testing.T) {
	_, _, a, _ := buildTriangle(t, 7)
	okMsg, _ := aquago.LookupMessage("OK?")
	ctx := context.Background()
	h1, err := a.SendAsync(ctx, 0, okMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := a.SendAsync(ctx, 0, okMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	h2.Cancel()
	res, err := h2.Wait(ctx)
	if !errors.Is(err, aquago.ErrTxCancelled) {
		t.Fatalf("cancelled job: err = %v, want ErrTxCancelled", err)
	}
	if res.Attempts != 0 || res.Delivered {
		t.Fatalf("cancelled-while-queued job has a nonzero result: %+v", res)
	}
	if res, err := h1.Wait(ctx); err != nil || !res.Delivered {
		t.Fatalf("inflight neighbor affected by cancel: %+v, %v", res, err)
	}
	h2.Cancel() // cancelling a done job is a no-op
}

// TestPipelinedBulkConservesBytes runs the pipelined transfer down a
// 3-hop line and checks the SendBulkVia conservation contract holds
// packet for packet.
func TestPipelinedBulkConservesBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full adaptive exchanges per hop")
	}
	payload := []byte("pipelined underwater bulk!") // 26 bytes -> 13 packets
	net, _ := buildRelayLine(t, 3)
	res, err := net.SendBulkViaPipelined(context.Background(),
		[]aquago.DeviceID{0, 1, 2, 3}, payload)
	if err != nil {
		t.Fatalf("pipelined transfer: %v (result %+v)", err, res)
	}
	if !bytes.Equal(res.Received, payload) {
		t.Fatalf("payload not conserved:\nsent     %q\nreceived %q", payload, res.Received)
	}
	wantPkts := (len(payload) + 1) / 2
	if res.Packets != wantPkts || res.DeliveredPackets != wantPkts || res.DeliveredBytes != len(payload) {
		t.Fatalf("delivery accounting wrong: %+v", res)
	}
	if len(res.Bands) != wantPkts {
		t.Fatalf("band trace has %d entries, want %d", len(res.Bands), wantPkts)
	}
	if res.EndS <= res.StartS {
		t.Fatalf("transfer window degenerate: start %g end %g", res.StartS, res.EndS)
	}
}

// TestPipelinedBulkWorkerInvariance is the queued-path determinism
// golden: the same pipelined transfer on 1 scheduler worker and on 8
// is deep-equal, with and without the p-persistent MAC and adaptive
// backoff quanta.
func TestPipelinedBulkWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full adaptive exchanges per hop")
	}
	payload := []byte("worker invariance")
	variants := []struct {
		name string
		opts []aquago.NetworkOption
	}{
		{"classic", nil},
		{"ppersistent-adaptive", []aquago.NetworkOption{
			aquago.WithPPersistence(0.7), aquago.WithAdaptiveBackoff(),
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			run := func(workers int) aquago.BulkResult {
				net, _ := buildRelayLine(t, 3,
					append([]aquago.NetworkOption{aquago.WithNetworkWorkers(workers)}, v.opts...)...)
				res, err := net.SendBulkViaPipelined(context.Background(),
					[]aquago.DeviceID{0, 1, 2, 3}, payload)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}
			one, eight := run(1), run(8)
			if !reflect.DeepEqual(one, eight) {
				t.Fatalf("pipelined transfer is worker-count dependent:\n1 worker:  %+v\n8 workers: %+v", one, eight)
			}
		})
	}
}

// TestPipelinedBulkMidTransferCancel cancels the transfer context
// after the first packets deliver and expects a clean abort: a
// RelayError wrapping ErrTxCancelled, and Received a contiguous
// prefix of the payload.
func TestPipelinedBulkMidTransferCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full adaptive exchanges per hop")
	}
	payload := make([]byte, 32) // 16 packets
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	net, _ := buildRelayLine(t, 2)
	ch := net.Deliveries()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		finals := 0
		for d := range ch {
			if d.To == 2 && d.Err == nil {
				finals++
				if finals == 2 {
					cancel()
				}
			}
		}
	}()
	res, err := net.SendBulkViaPipelined(ctx, []aquago.DeviceID{0, 1, 2}, payload)
	if err == nil {
		t.Fatalf("cancelled transfer returned no error: %+v", res)
	}
	var rerr *aquago.RelayError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v (%T), want *RelayError", err, err)
	}
	if !errors.Is(err, aquago.ErrTxCancelled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to wrap ErrTxCancelled or context.Canceled", err)
	}
	if res.DeliveredPackets >= res.Packets {
		t.Fatalf("transfer completed despite cancellation: %+v", res)
	}
	if !bytes.Equal(res.Received, payload[:res.DeliveredBytes]) {
		t.Fatalf("Received is not a contiguous payload prefix:\nwant %v\ngot  %v", payload[:res.DeliveredBytes], res.Received)
	}
}

// TestConcurrentEnqueuers hammers the queue from racing goroutines:
// everything must complete and drain, and per-node FIFO must hold for
// whatever interleaving the race produced.
func TestConcurrentEnqueuers(t *testing.T) {
	net, _, a, b := buildTriangle(t, 31)
	okMsg, _ := aquago.LookupMessage("OK?")
	const perNode = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	handles := make(map[aquago.DeviceID][]*aquago.TxHandle)
	for _, nd := range []*aquago.Node{a, b} {
		wg.Add(1)
		go func(nd *aquago.Node) {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				h, err := nd.SendAsync(context.Background(), 0, okMsg.ID)
				if err != nil {
					t.Errorf("node %d enqueue %d: %v", nd.ID(), i, err)
					return
				}
				mu.Lock()
				handles[nd.ID()] = append(handles[nd.ID()], h)
				mu.Unlock()
			}
		}(nd)
	}
	wg.Wait()
	ctx, cancelFlush := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelFlush()
	if err := net.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for id, hs := range handles {
		var lastEnd float64
		for i, h := range hs {
			res, err := h.Wait(context.Background())
			if err != nil || !res.Delivered {
				t.Fatalf("node %d job %d: %+v, %v", id, i, res, err)
			}
			// Per-node FIFO: each job's exchange ends after its
			// predecessor's on the virtual timeline.
			if h.EndS() <= lastEnd {
				t.Fatalf("node %d job %d ended at %g, not after predecessor's %g", id, i, h.EndS(), lastEnd)
			}
			lastEnd = h.EndS()
		}
	}
}

// TestNodeLeave drains the departing node's queue with ErrNodeLeft
// and fails later traffic from and to it.
func TestNodeLeave(t *testing.T) {
	_, _, a, b := buildTriangle(t, 13)
	okMsg, _ := aquago.LookupMessage("OK?")
	ctx := context.Background()

	h1, err := a.SendAsync(ctx, 0, okMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := a.SendAsync(ctx, 0, okMsg.ID)
	if err != nil {
		t.Fatal(err)
	}
	a.Leave()
	a.Leave() // idempotent
	if _, err := h2.Wait(ctx); !errors.Is(err, aquago.ErrNodeLeft) {
		t.Fatalf("queued job on departed node: err = %v, want ErrNodeLeft", err)
	}
	// The inflight job races Leave: either it finished cleanly or the
	// abort reached it.
	if _, err := h1.Wait(ctx); err != nil && !errors.Is(err, aquago.ErrNodeLeft) {
		t.Fatalf("inflight job on departed node: err = %v, want nil or ErrNodeLeft", err)
	}

	if _, err := a.Send(ctx, 0, okMsg.ID); !errors.Is(err, aquago.ErrNodeLeft) {
		t.Fatalf("blocking send from departed node: err = %v, want ErrNodeLeft", err)
	}
	if _, err := b.Send(ctx, a.ID(), okMsg.ID); !errors.Is(err, aquago.ErrNodeLeft) {
		t.Fatalf("blocking send to departed node: err = %v, want ErrNodeLeft", err)
	}
	if _, err := b.SendAsync(ctx, a.ID(), okMsg.ID); !errors.Is(err, aquago.ErrNodeLeft) {
		t.Fatalf("enqueue to departed node: err = %v, want ErrNodeLeft", err)
	}
}

// TestAsyncOptionValidation pins NewNetwork's rejection of bad async
// configuration.
func TestAsyncOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  aquago.NetworkOption
	}{
		{"zero queue capacity", aquago.WithTxQueueCapacity(0)},
		{"negative queue capacity", aquago.WithTxQueueCapacity(-4)},
		{"zero delivery buffer", aquago.WithDeliveryBuffer(0)},
		{"negative persistence", aquago.WithPPersistence(-0.1)},
		{"persistence above one", aquago.WithPPersistence(1.5)},
		{"NaN persistence", aquago.WithPPersistence(math.NaN())},
	}
	for _, tc := range bad {
		if _, err := aquago.NewNetwork(aquago.Bridge, tc.opt); err == nil {
			t.Errorf("%s: NewNetwork accepted it", tc.name)
		}
	}
	if _, err := aquago.NewNetwork(aquago.Bridge,
		aquago.WithPPersistence(1), aquago.WithTxQueueCapacity(1), aquago.WithDeliveryBuffer(1)); err != nil {
		t.Errorf("valid edge configuration rejected: %v", err)
	}
}

// TestPPersistentNetworkDeterministic runs contending senders under
// the p-persistent MAC twice with the same seed and expects identical
// results — the per-node slotted coin flips are seeded draws, not
// wall-clock noise.
func TestPPersistentNetworkDeterministic(t *testing.T) {
	run := func() map[aquago.DeviceID]aquago.SendResult {
		_, _, a, b := buildTriangle(t, 41,
			aquago.WithPPersistence(0.5), aquago.WithAdaptiveBackoff())
		return concurrentSends(t, a, b)
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("p-persistent MAC results differ across identical runs:\n%+v\n%+v", first, second)
	}
	for id, res := range first {
		if !res.Delivered {
			t.Fatalf("node %d failed to deliver under p-persistence: %+v", id, res)
		}
	}
}

// TestDeliveriesCarryTxIDs checks the delivery queue surfaces the
// same completions the handles resolve with, keyed by TxID.
func TestDeliveriesCarryTxIDs(t *testing.T) {
	net, _, a, b := buildTriangle(t, 43)
	ch := net.Deliveries()
	got, stop := drainDeliveries(ch)
	defer stop()
	okMsg, _ := aquago.LookupMessage("OK?")
	var want []uint64
	for i, nd := range []*aquago.Node{a, b, a} {
		h, err := nd.SendAsync(context.Background(), 0, okMsg.ID)
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		want = append(want, h.TxID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := net.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ds := got()
		if len(ds) == len(want) {
			seen := map[uint64]bool{}
			for _, d := range ds {
				seen[d.TxID] = true
				if d.Err != nil {
					t.Fatalf("tx %d delivery error: %v", d.TxID, d.Err)
				}
			}
			for _, id := range want {
				if !seen[id] {
					t.Fatalf("tx %d never appeared on the delivery queue (%v)", id, ds)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivery queue stalled: %d of %d arrived", len(ds), len(want))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

