package aquago_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"aquago"
)

// scatterNet joins n nodes at seeded random positions inside a
// box-shaped site, so route properties are exercised on irregular
// geometry rather than hand-picked lines.
func scatterNet(t *testing.T, n int, boxM float64, seed int64, opts ...aquago.NetworkOption) (*aquago.Network, []aquago.Position) {
	t.Helper()
	net, err := aquago.NewNetwork(aquago.Bridge,
		append([]aquago.NetworkOption{aquago.WithNetworkSeed(seed)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 7577))
	positions := make([]aquago.Position, n)
	for i := range positions {
		positions[i] = aquago.Position{X: rng.Float64() * boxM, Y: rng.Float64() * boxM, Z: 1}
		if _, err := net.Join(aquago.DeviceID(i), positions[i]); err != nil {
			t.Fatal(err)
		}
	}
	return net, positions
}

// audible mirrors the routing layer's edge rule for verification.
func audible(pos []aquago.Position, i, j int, csRangeM float64) bool {
	if i == j {
		return false
	}
	return csRangeM <= 0 || pos[i].DistanceTo(pos[j]) <= csRangeM
}

// bfsHops returns the audibility-graph hop distance from src to every
// node (-1 = unreachable) — the independent oracle min-hop routes are
// checked against.
func bfsHops(pos []aquago.Position, src int, csRangeM float64) []int {
	dist := make([]int, len(pos))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range pos {
			if dist[v] == -1 && audible(pos, u, v, csRangeM) {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TestRouteSelectionProperties is the routing property suite: on
// seeded random geometries, for both policies and every ordered node
// pair, a returned path must start and end at the endpoints, repeat
// no node (acyclic), keep every hop within carrier-sense audibility,
// and agree with an independent BFS about reachability; min-hop paths
// must additionally be hop-optimal. The same network built with
// Workers:1 and Workers:8 must route identically — path selection is
// a pure function of geometry and seeds, never of scheduling.
func TestRouteSelectionProperties(t *testing.T) {
	const (
		nodes    = 9
		boxM     = 120
		csRangeM = 45
	)
	for _, policy := range []aquago.RoutingPolicy{aquago.MinHop, aquago.MinETX} {
		for _, seed := range []int64{1, 5, 9} {
			net1, pos := scatterNet(t, nodes, boxM, seed,
				aquago.WithCSRange(csRangeM), aquago.WithRouting(policy), aquago.WithNetworkWorkers(1))
			netN, _ := scatterNet(t, nodes, boxM, seed,
				aquago.WithCSRange(csRangeM), aquago.WithRouting(policy), aquago.WithNetworkWorkers(8))
			for src := 0; src < nodes; src++ {
				hops := bfsHops(pos, src, csRangeM)
				for dst := 0; dst < nodes; dst++ {
					if src == dst {
						continue
					}
					path, err := net1.Route(aquago.DeviceID(src), aquago.DeviceID(dst))
					pathN, errN := netN.Route(aquago.DeviceID(src), aquago.DeviceID(dst))
					if (err == nil) != (errN == nil) || !reflect.DeepEqual(path, pathN) {
						t.Fatalf("%v seed %d %d->%d: Workers:1 and Workers:8 disagree: %v/%v vs %v/%v",
							policy, seed, src, dst, path, err, pathN, errN)
					}
					if err != nil {
						if !errors.Is(err, aquago.ErrNoRoute) {
							t.Fatalf("%v seed %d %d->%d: %v", policy, seed, src, dst, err)
						}
						if hops[dst] != -1 {
							t.Fatalf("%v seed %d %d->%d: ErrNoRoute but BFS reaches in %d hops", policy, seed, src, dst, hops[dst])
						}
						continue
					}
					if hops[dst] == -1 {
						t.Fatalf("%v seed %d %d->%d: routed %v across a partition", policy, seed, src, dst, path)
					}
					if path[0] != aquago.DeviceID(src) || path[len(path)-1] != aquago.DeviceID(dst) {
						t.Fatalf("%v seed %d %d->%d: path endpoints wrong: %v", policy, seed, src, dst, path)
					}
					seen := map[aquago.DeviceID]bool{}
					for _, id := range path {
						if seen[id] {
							t.Fatalf("%v seed %d %d->%d: path revisits node %d: %v", policy, seed, src, dst, id, path)
						}
						seen[id] = true
					}
					for h := 0; h+1 < len(path); h++ {
						if !audible(pos, int(path[h]), int(path[h+1]), csRangeM) {
							t.Fatalf("%v seed %d %d->%d: hop %d of %v exceeds the %g m carrier-sense range",
								policy, seed, src, dst, h, path, float64(csRangeM))
						}
					}
					if policy == aquago.MinHop && len(path)-1 != hops[dst] {
						t.Fatalf("seed %d %d->%d: min-hop path %v has %d hops, BFS says %d",
							seed, src, dst, path, len(path)-1, hops[dst])
					}
					// Routing must be stable call to call (cache or not).
					again, err := net1.Route(aquago.DeviceID(src), aquago.DeviceID(dst))
					if err != nil || !reflect.DeepEqual(path, again) {
						t.Fatalf("%v seed %d %d->%d: route not stable: %v then %v (%v)", policy, seed, src, dst, path, again, err)
					}
				}
			}
		}
	}
}

// TestRouteUnlimitedRangeIsDirect: with unlimited carrier-sense range
// every pair is audible, so routing degenerates to the direct path.
func TestRouteUnlimitedRangeIsDirect(t *testing.T) {
	net, _ := scatterNet(t, 5, 60, 3)
	path, err := net.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []aquago.DeviceID{0, 4}) {
		t.Fatalf("unlimited range routed %v, want the direct [0 4]", path)
	}
}

// TestRouteErrors pins the routing slice of the error taxonomy.
func TestRouteErrors(t *testing.T) {
	// Two nodes 500 m apart with a 30 m carrier-sense range: a
	// partitioned audibility graph.
	net, err := aquago.NewNetwork(aquago.Bridge, aquago.WithCSRange(30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(0, aquago.Position{X: 0, Z: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(1, aquago.Position{X: 500, Z: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Route(0, 1); !errors.Is(err, aquago.ErrNoRoute) {
		t.Fatalf("partitioned graph: %v, want ErrNoRoute", err)
	}
	if _, err := net.Route(0, 42); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("unknown destination: %v, want ErrUnknownDevice", err)
	}
	if _, err := net.Route(42, 0); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("unknown source: %v, want ErrUnknownDevice", err)
	}
	if _, err := net.Route(0, 0); !errors.Is(err, aquago.ErrBadDeviceID) {
		t.Fatalf("self route: %v, want ErrBadDeviceID", err)
	}
}

// TestPairLookupErrorConsistency audits every pair-resolving surface
// for the same taxonomy: a never-joined device is ErrUnknownDevice
// everywhere — MediumTo, Send, Route, SendVia, SendBulkVia — and a
// self-pair is ErrBadDeviceID (MediumTo(self) used to leak a raw
// internal "no link" error instead of a typed one).
func TestPairLookupErrorConsistency(t *testing.T) {
	net, _ := scatterNet(t, 3, 20, 3)
	a, ok := net.Node(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	ctx := context.Background()
	okMsg, _ := aquago.LookupMessage("OK?")

	if _, err := a.MediumTo(42); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("MediumTo stranger: %v", err)
	}
	if _, err := a.MediumTo(a.ID()); !errors.Is(err, aquago.ErrBadDeviceID) {
		t.Fatalf("MediumTo self: %v, want ErrBadDeviceID", err)
	}
	if _, err := a.Send(ctx, 42, okMsg.ID); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("Send stranger: %v", err)
	}
	if _, err := net.Route(0, 42); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("Route stranger: %v", err)
	}
	if _, err := net.SendVia(ctx, []aquago.DeviceID{0, 42}, okMsg.ID); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("SendVia stranger: %v", err)
	}
	if _, err := net.SendBulkVia(ctx, []aquago.DeviceID{0, 42}, []byte("hi")); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("SendBulkVia stranger: %v", err)
	}
	if _, err := a.SendBulk(ctx, 42, []byte("hi")); !errors.Is(err, aquago.ErrUnknownDevice) {
		t.Fatalf("SendBulk stranger: %v", err)
	}
}
