package aquago

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// This file is the async transmit subsystem: per-node priority
// transmit queues drained by per-node transmit daemons, with
// completions surfaced on a delivery queue. It adopts the classic
// packet-radio producer/consumer architecture — producers append to a
// node's queue and return immediately; a daemon owns the radio and
// contends for the channel — on top of the PR 3/6 conflict-graph
// scheduler, which already orders interfering exchanges
// deterministically once they reach the MAC.
//
// The determinism story. The scheduler guarantees worker-count
// invariant results as long as conflicting attempts REGISTER in a
// deterministic order; the batch experiment drivers achieved that
// with strict prefix batching. Free-running daemons need the
// equivalent gate at the queue level, and it is this dispatch rule:
//
//	a queued job may dispatch only when no live job that could
//	interfere with it — inflight anywhere, or queued with a smaller
//	(priority, enqueue-sequence) key — exists.
//
// Interference is the scheduler's own predicate (Network.interferes
// over the two jobs' node pairs). Two consequences:
//
//   - conflicting jobs execute strictly one at a time, in enqueue
//     order (priority first), so their MAC grants and retries register
//     in that order regardless of worker count or goroutine timing;
//   - non-conflicting jobs dispatch freely and run concurrently, and
//     by the scheduler's own invariant they cannot affect each other's
//     results.
//
// Completion processing is atomic under the queue lock: the handle
// resolves, the delivery is recorded, and any continuation (a
// pipelined relay forwarding the packet to the next hop) enqueues
// BEFORE any newly unblocked job can dispatch. The contract: results
// are deterministic and worker-count invariant whenever the enqueue
// pattern itself is deterministic — jobs enqueued from one goroutine
// in program order, or from completion continuations (the pipelined
// relay), or both. Racing enqueuers from independent goroutines get
// well-defined FIFO-within-priority semantics per node, but their
// interleaving is theirs to determine.
//
// Virtual time stays causal without any queue-level time ordering:
// every dispatched attempt still passes the scheduler's scoped
// frontier clamp, so a job dispatched "late" simply contends from its
// node's current horizon, exactly like a blocking Send.

// TxPriority orders jobs within one node's transmit queue: a lower
// value dispatches first, and jobs of equal priority dispatch FIFO in
// enqueue order. Across nodes, priority also orders conflicting jobs
// (a high-priority job on one node precedes a conflicting normal one
// enqueued earlier on another).
type TxPriority int

const (
	// TxHigh is for control-plane traffic that should jump queued
	// payloads (an SOS message in the paper's terms).
	TxHigh TxPriority = iota
	// TxNormal is the default conversational priority (SendAsync).
	TxNormal
	// TxBulk is background transfer priority; the pipelined bulk
	// relay schedules its packets here so conversational sends
	// overtake a long transfer at every hop.
	TxBulk

	numTxPriorities
)

// String names the priority for logs.
func (p TxPriority) String() string {
	switch p {
	case TxHigh:
		return "high"
	case TxNormal:
		return "normal"
	case TxBulk:
		return "bulk"
	}
	return fmt.Sprintf("TxPriority(%d)", int(p))
}

// TxJob describes one queued transmission for Node.Enqueue. Exactly
// one of Msgs (one or two codebook messages, like Node.Send) or Raw
// (an arbitrary 16-bit payload) must be set.
type TxJob struct {
	// Dst is the destination device.
	Dst DeviceID
	// Msgs holds one or two codebook message IDs.
	Msgs []uint8
	// Raw, when non-nil, substitutes an arbitrary 2-byte payload.
	Raw *[2]byte
	// Priority is the queue priority (zero value TxHigh; SendAsync
	// uses TxNormal).
	Priority TxPriority
	// NotBeforeS floors the transmission's ready time on the virtual
	// timeline without advancing the node's clock — "this message
	// arrives at t". Zero means ready at the node's own clock.
	NotBeforeS float64
	// OnDone, when non-nil, is called with the job's delivery exactly
	// once, from the network's delivery pump (never concurrently with
	// other deliveries, in completion order). It may call back into
	// the network (enqueue follow-ups), unlike a Trace.
	OnDone func(TxDelivery)
}

// TxDelivery is one completed queued transmission, surfaced on the
// Deliveries channel and per-job OnDone callbacks.
type TxDelivery struct {
	// TxID is the completed job's handle ID (TxHandle.TxID) — the
	// same value stamped on the exchange's StageEvents.
	TxID uint64
	// From and To are the job's endpoints.
	From, To DeviceID
	// Priority is the queue priority the job ran at.
	Priority TxPriority
	// Result is the protocol send result (zero when the job never
	// reached the radio — cancelled while queued, node left).
	Result SendResult
	// EndS is the virtual time the final on-air attempt left the air
	// (zero when the job never transmitted).
	EndS float64
	// Err is the job's error, wrapping the public taxonomy
	// (ErrTxCancelled, ErrNodeLeft, ErrNoACK, ErrChannelBusy, ...);
	// nil on acknowledged delivery.
	Err error
}

// TxHandle tracks one queued transmission. Obtain handles from
// Node.SendAsync or Node.Enqueue; wait on Done/Wait, or consume the
// network-wide Deliveries queue instead.
type TxHandle struct {
	net *Network
	job *txJob

	// done closes when the job completes (delivered, failed,
	// cancelled, or drained by Leave). res/endS/err are written
	// before done closes and must only be read after it.
	done chan struct{}
	res  SendResult
	endS float64
	err  error
}

// TxID returns the handle's network-unique ID (assigned at enqueue,
// starting at 1; blocking sends stamp 0). Conflicting queued jobs
// dispatch in (priority, TxID) order.
func (h *TxHandle) TxID() uint64 { return h.job.seq }

// Done returns a channel closed when the job completes.
func (h *TxHandle) Done() <-chan struct{} { return h.done }

// Result returns the completed job's send result and error. Before
// completion it returns a zero SendResult and a nil error, which is
// not distinguishable from a successful empty result — only call it
// after Done is closed (Wait does both).
func (h *TxHandle) Result() (SendResult, error) {
	select {
	case <-h.done:
		return h.res, h.err
	default:
		return SendResult{}, nil
	}
}

// EndS returns the virtual time the job's final on-air attempt left
// the air (zero before completion or when it never transmitted).
func (h *TxHandle) EndS() float64 {
	select {
	case <-h.done:
		return h.endS
	default:
		return 0
	}
}

// Wait blocks until the job completes (returning its result and
// error) or ctx expires (returning ctx's error; the job itself keeps
// running — Cancel it to stop it).
func (h *TxHandle) Wait(ctx context.Context) (SendResult, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return SendResult{}, ctx.Err()
	}
}

// Cancel withdraws the job: still-queued jobs complete immediately
// with ErrTxCancelled (they never touch the radio); an inflight job
// has its context cancelled, aborting between MAC attempts, and its
// error wraps ErrTxCancelled. Cancelling a completed job is a no-op.
func (h *TxHandle) Cancel() {
	n := h.net
	n.tx.mu.Lock()
	defer n.tx.mu.Unlock()
	switch h.job.state {
	case txQueued:
		n.txCancelQueuedLocked(h.job, fmt.Errorf("%w: cancelled while queued", ErrTxCancelled))
		n.txEvaluateLocked()
		n.txCheckIdleLocked()
	case txInflight:
		h.job.cancelled = true
		h.job.cancel()
	}
}

// txJobState tracks a job through the queue.
type txJobState int

const (
	txQueued txJobState = iota
	txInflight
	txDone
)

// txJob is the internal form of one queued transmission.
type txJob struct {
	h      *TxHandle
	nd     *Node
	dst    *Node
	pri    TxPriority
	seq    uint64 // global enqueue sequence = handle TxID
	notB   float64
	raw    *[2]byte
	first  uint8
	second uint8
	rc     relayCtx

	ctx       context.Context
	cancel    context.CancelFunc
	cancelled bool // Cancel() reached it inflight
	left      bool // Leave() reached it inflight

	onDone func(TxDelivery)
	// after, when non-nil, runs under tx.mu as part of completion
	// processing — atomically before any newly unblocked job can
	// dispatch. The pipelined relay forwards packets through it.
	after func(TxDelivery)

	state txJobState
}

// nodeTxq is one node's transmit queue: one FIFO per priority plus
// the daemon handoff slot.
type nodeTxq struct {
	q [numTxPriorities][]*txJob
	// n is the total queued job count across priorities.
	n int
	// daemonLive marks a running transmit daemon for this node; next
	// is its handoff slot (capacity 1 — a node can never have two
	// dispatchable jobs, since its second job conflicts with the
	// first by the shared node).
	daemonLive bool
	next       chan *txJob
}

func newNodeTxq() *nodeTxq { return &nodeTxq{next: make(chan *txJob, 1)} }

// head returns the node's next job in (priority, seq) order.
func (nq *nodeTxq) head() *txJob {
	for p := range nq.q {
		if len(nq.q[p]) > 0 {
			return nq.q[p][0]
		}
	}
	return nil
}

// remove drops a queued job (the head pop and mid-queue cancellation
// share it).
func (nq *nodeTxq) remove(j *txJob) {
	q := nq.q[j.pri]
	for i, x := range q {
		if x == j {
			nq.q[j.pri] = append(q[:i], q[i+1:]...)
			nq.n--
			return
		}
	}
}

// txDone pairs a delivery with its job callback for the pump.
type txDelivered struct {
	d  TxDelivery
	cb func(TxDelivery)
}

// txState is the network-wide async transmit state. Its mutex is
// taken BEFORE Network.mu when both are needed, never after.
type txState struct {
	mu sync.Mutex
	// seq is the last assigned TxID.
	seq uint64
	// nodes is the set of nodes with queued work.
	nodes map[*Node]struct{}
	// queued counts jobs across all node queues; inflight lists jobs
	// between dispatch and completion.
	queued   int
	inflight []*txJob
	// backlog holds completed deliveries awaiting the pump; pumpLive
	// marks the pump goroutine running.
	backlog  []txDelivered
	pumpLive bool
	// deliverCh is the Deliveries channel, created on first use.
	deliverCh chan TxDelivery
	// waiters are Flush callers parked until the queue drains.
	waiters []chan struct{}
}

// SendAsync enqueues one or two codebook messages to dst at TxNormal
// priority and returns immediately with a handle: the queued-work
// form of Node.Send. The node's transmit daemon dispatches the job
// when the conflict gate clears, runs the full carrier-sense exchange
// and resolves the handle; the completion also lands on the
// network's Deliveries queue. Errors at enqueue time: ErrBadMessage,
// ErrUnknownDevice, ErrNodeLeft, ErrQueueFull.
func (nd *Node) SendAsync(ctx context.Context, dst DeviceID, msgs ...uint8) (*TxHandle, error) {
	return nd.Enqueue(ctx, TxJob{Dst: dst, Msgs: msgs, Priority: TxNormal})
}

// Enqueue appends a transmit job to the node's priority queue and
// returns immediately with its handle — never blocking: a queue at
// capacity rejects with ErrQueueFull. ctx governs the job's whole
// life, queued time included. Jobs of one node dispatch FIFO within
// each priority; see the package's dispatch-determinism contract in
// this file's header.
func (nd *Node) Enqueue(ctx context.Context, job TxJob) (*TxHandle, error) {
	if job.Priority < 0 || job.Priority >= numTxPriorities {
		return nil, fmt.Errorf("%w: unknown transmit priority %d", ErrBadMessage, int(job.Priority))
	}
	var raw *[2]byte
	first, second := uint8(0), uint8(NoMessage)
	switch {
	case job.Raw != nil:
		if len(job.Msgs) != 0 {
			return nil, fmt.Errorf("%w: a job carries Msgs or Raw, not both", ErrBadMessage)
		}
		r := *job.Raw
		raw = &r
	case len(job.Msgs) < 1 || len(job.Msgs) > 2:
		return nil, fmt.Errorf("%w: send carries 1 or 2 messages, got %d", ErrBadMessage, len(job.Msgs))
	default:
		first = job.Msgs[0]
		if len(job.Msgs) == 2 {
			second = job.Msgs[1]
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := nd.net
	n.tx.mu.Lock()
	defer n.tx.mu.Unlock()
	n.mu.Lock()
	if nd.departed {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: source %d", ErrNodeLeft, nd.id)
	}
	peer, err := n.peerLocked(nd, job.Dst)
	n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	h, err := n.txEnqueueLocked(nd, peer, job.Priority, job.NotBeforeS, raw, first, second, relayCtx{}, ctx, job.OnDone, nil)
	if err != nil {
		return nil, err
	}
	n.txEvaluateLocked()
	return h, nil
}

// txEnqueueLocked builds and queues a job (tx.mu held). It does NOT
// run the dispatch gate — callers evaluate once after a batch.
func (n *Network) txEnqueueLocked(nd, dst *Node, pri TxPriority, notBeforeS float64, raw *[2]byte, first, second uint8, rc relayCtx, ctx context.Context, onDone, after func(TxDelivery)) (*TxHandle, error) {
	if nd.txq.n >= n.cfg.txQueueCap {
		return nil, fmt.Errorf("%w: node %d at capacity %d", ErrQueueFull, nd.id, n.cfg.txQueueCap)
	}
	n.tx.seq++
	jctx, cancel := context.WithCancel(ctx)
	j := &txJob{
		nd: nd, dst: dst, pri: pri, seq: n.tx.seq,
		notB: notBeforeS, raw: raw, first: first, second: second,
		rc: rc, ctx: jctx, cancel: cancel,
		onDone: onDone, after: after,
	}
	j.rc.txID = j.seq
	j.h = &TxHandle{net: n, job: j, done: make(chan struct{})}
	nd.txq.q[pri] = append(nd.txq.q[pri], j)
	nd.txq.n++
	n.tx.queued++
	if n.tx.nodes == nil {
		n.tx.nodes = make(map[*Node]struct{})
	}
	n.tx.nodes[nd] = struct{}{}
	return j.h, nil
}

// txQueuedNodesSortedLocked materializes the queued-node set in
// ascending device-ID order (tx.mu held). Every dispatch-gate scan
// iterates this slice, never tx.nodes directly: map order is
// randomized per run, and the gate's contract is that its behavior is
// a deterministic function of queue state.
func (n *Network) txQueuedNodesSortedLocked() []*Node {
	nodes := make([]*Node, 0, len(n.tx.nodes))
	for nd := range n.tx.nodes {
		nodes = append(nodes, nd)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	return nodes
}

// txConflict reports whether two jobs' exchanges could interact —
// the scheduler's own interference predicate over the jobs' node
// pairs. Callers hold n.mu.
func (n *Network) txConflict(a, b *txJob) bool {
	return n.interferes(a.nd.idx, a.dst.idx, b.nd.idx, b.dst.idx)
}

// txKeyLess orders jobs by the dispatch key (priority, enqueue seq).
func txKeyLess(a, b *txJob) bool {
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// txEvaluateLocked is the dispatch gate (tx.mu held): every node head
// with no live conflicting predecessor — inflight, or queued anywhere
// with a smaller key — is popped and handed to its node's daemon.
// Heads dispatched in one pass are mutually non-conflicting by the
// same rule, so the set dispatched is pass-order independent — but
// the pass order still decides the sequence dispatched jobs reach
// their daemons' handoff slots, and a determinism invariant that
// rests on "cannot matter" is unverifiable. The node set is therefore
// materialized sorted by device ID, making the scan a function of the
// network rather than of Go's randomized map layout.
func (n *Network) txEvaluateLocked() {
	if n.tx.queued == 0 {
		return
	}
	// The interference predicate reads node geometry; n.mu guards the
	// order table (tx.mu before mu is the global lock order).
	n.mu.Lock()
	nodes := n.txQueuedNodesSortedLocked()
	var dispatch []*txJob
	for _, nd := range nodes {
		j := nd.txq.head()
		if j == nil {
			continue
		}
		blocked := false
		for _, k := range n.tx.inflight {
			if n.txConflict(j, k) {
				blocked = true
				break
			}
		}
		if !blocked {
		scan:
			for _, other := range nodes {
				if other == nd {
					continue
				}
				for p := range other.txq.q {
					for _, b := range other.txq.q[p] {
						if txKeyLess(b, j) && n.txConflict(j, b) {
							blocked = true
							break scan
						}
					}
				}
			}
		}
		if !blocked {
			dispatch = append(dispatch, j)
		}
	}
	n.mu.Unlock()
	for _, j := range dispatch {
		nq := j.nd.txq
		nq.remove(j)
		if nq.n == 0 {
			delete(n.tx.nodes, j.nd)
		}
		n.tx.queued--
		j.state = txInflight
		n.tx.inflight = append(n.tx.inflight, j)
		if !nq.daemonLive {
			nq.daemonLive = true
			go n.txDaemon(j.nd)
		}
		//aqualint:chansend-ok next has capacity 1 and a node never has two dispatchable jobs (its second conflicts with its first via the shared node), so this send cannot block
		nq.next <- j
	}
}

// txDaemon is one node's transmit daemon: it owns the node's radio
// for queued work, draining dispatched jobs until the handoff slot is
// empty, then exits (the gate respawns it on demand, so an idle
// network holds no goroutines).
func (n *Network) txDaemon(nd *Node) {
	nq := nd.txq
	for {
		var j *txJob
		select {
		case j = <-nq.next:
		default:
			n.tx.mu.Lock()
			if len(nq.next) == 0 {
				nq.daemonLive = false
				n.tx.mu.Unlock()
				return
			}
			n.tx.mu.Unlock()
			continue
		}
		res, endS, err := nd.sendWith(j.ctx, j.dst.id, j.rc, j.notB, j.raw, j.first, j.second)
		n.txComplete(j, res, endS, err)
	}
}

// txComplete processes one finished job atomically under tx.mu:
// resolve the handle, run the continuation (a pipelined relay's
// forward enqueue lands here, before any unblocked job can dispatch),
// record the delivery, and re-run the dispatch gate.
func (n *Network) txComplete(j *txJob, res SendResult, endS float64, err error) {
	n.tx.mu.Lock()
	defer n.tx.mu.Unlock()
	for i, k := range n.tx.inflight {
		if k == j {
			n.tx.inflight = append(n.tx.inflight[:i], n.tx.inflight[i+1:]...)
			break
		}
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		if j.left {
			err = fmt.Errorf("%w: %w", ErrNodeLeft, err)
		} else {
			err = fmt.Errorf("%w: %w", ErrTxCancelled, err)
		}
	}
	n.txFinishLocked(j, res, endS, err)
	n.txEvaluateLocked()
	n.txCheckIdleLocked()
}

// txFinishLocked resolves a job's handle, runs its continuation and
// queues its delivery (tx.mu held). Callers own gate re-evaluation.
func (n *Network) txFinishLocked(j *txJob, res SendResult, endS float64, err error) {
	j.state = txDone
	j.h.res, j.h.endS, j.h.err = res, endS, err
	close(j.h.done)
	d := TxDelivery{
		TxID: j.seq, From: j.nd.id, To: j.dst.id, Priority: j.pri,
		Result: res, EndS: endS, Err: err,
	}
	if j.after != nil {
		//aqualint:callback-under-lock after is internal (never user-supplied): the pipelined relay's continuation, documented on txJob to run under tx.mu so forwards enqueue before any unblocked job dispatches; it calls only *Locked helpers
		j.after(d)
	}
	n.txDeliverLocked(d, j.onDone)
	j.cancel()
}

// txCancelQueuedLocked completes a still-queued job with err without
// it ever touching the radio (tx.mu held).
func (n *Network) txCancelQueuedLocked(j *txJob, err error) {
	nq := j.nd.txq
	nq.remove(j)
	if nq.n == 0 {
		delete(n.tx.nodes, j.nd)
	}
	n.tx.queued--
	n.txFinishLocked(j, SendResult{}, 0, err)
}

// txDeliverLocked appends a completion for the delivery pump. With no
// Deliveries channel and no callback the delivery vanishes (handles
// still resolve).
func (n *Network) txDeliverLocked(d TxDelivery, cb func(TxDelivery)) {
	if cb == nil && n.tx.deliverCh == nil {
		return
	}
	n.tx.backlog = append(n.tx.backlog, txDelivered{d, cb})
	if !n.tx.pumpLive {
		n.tx.pumpLive = true
		go n.txPump()
	}
}

// txPump drains the delivery backlog in completion order, outside the
// queue lock: callbacks may re-enter the network, and a full
// Deliveries channel stalls only this pump, never a transmit daemon.
func (n *Network) txPump() {
	for {
		n.tx.mu.Lock()
		if len(n.tx.backlog) == 0 {
			n.tx.pumpLive = false
			n.tx.mu.Unlock()
			return
		}
		e := n.tx.backlog[0]
		n.tx.backlog = n.tx.backlog[1:]
		ch := n.tx.deliverCh
		n.tx.mu.Unlock()
		if e.cb != nil {
			e.cb(e.d)
		}
		if ch != nil {
			ch <- e.d
		}
	}
}

// txCheckIdleLocked releases Flush waiters once no queued or inflight
// work remains.
func (n *Network) txCheckIdleLocked() {
	if n.tx.queued != 0 || len(n.tx.inflight) != 0 {
		return
	}
	for _, ch := range n.tx.waiters {
		close(ch)
	}
	n.tx.waiters = nil
}

// Deliveries returns the network-wide delivery queue: every queued
// job's completion, in completion order, including cancellations and
// Leave drains. The channel is created on first call (sized by
// WithDeliveryBuffer) and only carries completions processed after
// that, so call it before enqueueing. Consume it promptly — a full
// channel stalls delivery (and OnDone callbacks behind it), though
// never the transmit daemons themselves.
func (n *Network) Deliveries() <-chan TxDelivery {
	n.tx.mu.Lock()
	defer n.tx.mu.Unlock()
	if n.tx.deliverCh == nil {
		n.tx.deliverCh = make(chan TxDelivery, n.cfg.deliveryBuffer)
	}
	return n.tx.deliverCh
}

// Flush blocks until the async transmit subsystem is idle — every
// queued and inflight job completed — or ctx expires. Deliveries may
// still be draining through the pump when Flush returns; handles are
// all resolved.
func (n *Network) Flush(ctx context.Context) error {
	n.tx.mu.Lock()
	if n.tx.queued == 0 && len(n.tx.inflight) == 0 {
		n.tx.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	n.tx.waiters = append(n.tx.waiters, ch)
	n.tx.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave departs the node from the network's traffic plane: its queued
// jobs drain immediately with ErrNodeLeft, its inflight job (if any)
// is aborted, and every later send from it — or addressed to it —
// fails with ErrNodeLeft. The node also leaves the routing plane:
// cached routes relaying through it are invalidated and new routes
// never pass through a departed node (previously Network.Route kept
// returning cached paths through departed radios). The node's
// geometry stays: departed radios do not change the audibility graph
// other nodes were built on (a diver surfacing does not move the
// water). Leave is idempotent.
func (nd *Node) Leave() {
	n := nd.net
	n.tx.mu.Lock()
	defer n.tx.mu.Unlock()
	n.mu.Lock()
	if nd.departed {
		n.mu.Unlock()
		return
	}
	nd.departed = true
	n.noteLeaveLocked(nd.idx)
	n.mu.Unlock()
	for p := range nd.txq.q {
		for len(nd.txq.q[p]) > 0 {
			n.txCancelQueuedLocked(nd.txq.q[p][0], fmt.Errorf("%w: node %d", ErrNodeLeft, nd.id))
		}
	}
	for _, j := range n.tx.inflight {
		if j.nd == nd {
			j.left = true
			j.cancel()
		}
	}
	n.txEvaluateLocked()
	n.txCheckIdleLocked()
}
