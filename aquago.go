// Package aquago is a from-scratch Go implementation of AquaApp, the
// software-only underwater acoustic messaging system for commodity
// mobile devices from "Underwater Messaging Using Mobile Devices"
// (SIGCOMM 2022). It provides:
//
//   - the 1-4 kHz OFDM modem with CAZAC/PN preambles, per-subcarrier
//     SNR estimation, time-domain MMSE equalization and differential
//     BPSK (internal/modem),
//   - the frequency band adaptation algorithm and its two-tone
//     feedback symbol (internal/adapt),
//   - the packet protocol with post-preamble feedback, ID/ACK tones
//     and retransmission (internal/phy, internal/app),
//   - the long-range FSK SoS beacon (5/10/20 bps),
//   - a carrier-sense MAC and multi-node acoustic medium
//     (internal/mac, internal/sim),
//   - and the underwater channel simulator standing in for the
//     paper's six field sites (internal/channel).
//
// Three usage styles are supported. The signal-level API (Modem)
// turns packets into audio sample buffers and back — suitable for
// feeding a real speaker/microphone pair or WAV files. The session
// API (Dial) runs the full adaptive protocol, including the feedback
// round, between two endpoints over any Medium (most commonly the
// simulated water of SimulatedWater). The network API (NewNetwork,
// Network.Join, Node.Send) scales that to N devices contending for
// one shared body of water through the carrier-sense MAC, with
// per-pair channels derived from node geometry; the two-endpoint
// session is its 2-node special case. Collisions either count against
// envelope statistics (the default fast path) or corrupt the actual
// received samples (WithContentionMode(WaveformContention)), and
// non-interfering exchanges run in parallel on a conflict-graph
// scheduler (WithNetworkWorkers). Above the MAC, the network routes
// and relays: Network.Route picks multi-hop paths over the
// carrier-sense audibility graph (WithRouting: min-hop or ETX-style
// channel-quality weighting), Network.SendVia walks an explicit path
// store-and-forward, and Node.SendBulk streams arbitrary payloads
// down the routed path with per-packet band re-adaptation.
//
// Failures across the surface wrap the typed taxonomy in errors.go
// (ErrNoACK, ErrChannelBusy, ErrDecodeFailed, ...) for errors.Is, and
// per-stage protocol visibility is available through the Trace
// interface (SetTrace, WithNodeTrace, WithNetworkTrace).
package aquago

import (
	"fmt"

	"aquago/internal/adapt"
	"aquago/internal/app"
	"aquago/internal/audio"
	"aquago/internal/channel"
	"aquago/internal/modem"
	"aquago/internal/phy"
)

// Re-exported core types. Aliases keep the public surface in one
// import while the implementation stays in focused internal packages.
type (
	// Message is one of the 240 canned hand-signal messages.
	Message = app.Message
	// Category is a message category (8 in total).
	Category = app.Category
	// Band is a contiguous range of OFDM subcarriers.
	Band = modem.Band
	// DeviceID addresses one of up to 60 devices in a local network.
	DeviceID = phy.DeviceID
	// Packet is a 16-bit-payload protocol packet.
	Packet = phy.Packet
	// Result reports the outcome of one adaptive packet exchange.
	Result = phy.Result
	// Environment describes a deployment site for simulation.
	Environment = channel.Environment
	// Device models a phone/watch acoustic front end.
	Device = channel.Device
	// Motion describes device movement for simulation.
	Motion = channel.Motion
	// Medium carries waveforms between two protocol endpoints.
	Medium = phy.Medium
)

// Simulation presets, re-exported from the channel package.
var (
	// The paper's six field sites.
	Bridge, Park, Lake, Beach, Museum, Bay = channel.Bridge, channel.Park,
		channel.Lake, channel.Beach, channel.Museum, channel.Bay
	// The paper's four evaluation devices.
	GalaxyS9, Pixel4, OnePlus8Pro, GalaxyWatch4 = channel.GalaxyS9,
		channel.Pixel4, channel.OnePlus8Pro, channel.GalaxyWatch4
	// Motion presets (static / 2.5 m/s^2 / 5.1 m/s^2).
	Static, SlowMotion, FastMotion = channel.Static, channel.SlowMotion,
		channel.FastMotion
)

// Codebook returns the 240-message codebook in ID order.
func Codebook() []Message { return app.Messages() }

// CommonMessages returns the 20 most common hand signals.
func CommonMessages() []Message { return app.Common() }

// LookupMessage finds a message by exact text.
func LookupMessage(text string) (Message, bool) { return app.ByText(text) }

// SearchMessages finds messages containing the query.
func SearchMessages(query string) []Message { return app.Search(query) }

// Modem is the signal-level API: packets to audio samples and back,
// on a fixed pre-agreed band (no feedback round). Use Dial for the
// adaptive protocol.
type Modem struct {
	m    *modem.Modem
	shot *phy.OneShot
}

// ModemOption customizes NewModem.
type ModemOption func(*modemConfig)

type modemConfig struct {
	spacing int
	band    *Band
}

// WithSpacing selects the OFDM subcarrier spacing in Hz (50, 25 or
// 10; default 50).
func WithSpacing(hz int) ModemOption {
	return func(c *modemConfig) { c.spacing = hz }
}

// WithBand fixes the transmission band (subcarrier indices, inclusive;
// default: all 60 subcarriers).
func WithBand(lo, hi int) ModemOption {
	return func(c *modemConfig) { c.band = &Band{Lo: lo, Hi: hi} }
}

// NewModem builds a signal-level modem with the paper's default
// numerology (48 kHz sampling, 1-4 kHz band).
func NewModem(opts ...ModemOption) (*Modem, error) {
	mc := modemConfig{spacing: modem.DefaultSpacingHz}
	for _, o := range opts {
		o(&mc)
	}
	cfg := modem.DefaultConfig().WithSpacing(mc.spacing)
	m, err := modem.New(cfg)
	if err != nil {
		return nil, err
	}
	band := modem.FullBand(cfg)
	if mc.band != nil {
		band = *mc.band
	}
	shot, err := phy.NewOneShot(m, band)
	if err != nil {
		return nil, err
	}
	return &Modem{m: m, shot: shot}, nil
}

// SampleRate returns the audio sample rate (48 kHz).
func (mo *Modem) SampleRate() int { return mo.m.Config().SampleRate }

// Band returns the modem's fixed transmission band.
func (mo *Modem) Band() Band { return mo.shot.Band }

// BitrateBPS returns the information bit rate of the fixed band.
func (mo *Modem) BitrateBPS() float64 {
	return adapt.BitrateBPS(mo.shot.Band, mo.m.Config(), 2.0/3.0)
}

// EncodeMessages builds the transmit waveform carrying one or two
// codebook messages for dst. Pass app.NoMessage (0xFF) as second for
// a single message.
func (mo *Modem) EncodeMessages(dst DeviceID, first, second uint8) ([]float64, error) {
	payload, err := app.PackPair(first, second)
	if err != nil {
		return nil, err
	}
	return mo.shot.Encode(phy.Packet{Dst: dst, Payload: payload})
}

// DecodeMessages searches rx for a packet addressed to self (or any
// packet when self < 0) and returns the carried messages.
func (mo *Modem) DecodeMessages(rx []float64, self DeviceID) ([]Message, bool) {
	dec, ok := mo.shot.Decode(rx, self)
	if !ok {
		return nil, false
	}
	msgs, err := app.DecodePayload(dec.Packet.Payload)
	if err != nil {
		return nil, false
	}
	return msgs, true
}

// EncodeToWAV renders an encoded waveform into a WAV file at path,
// normalized to 0.9 peak amplitude.
func (mo *Modem) EncodeToWAV(path string, dst DeviceID, first, second uint8) error {
	wave, err := mo.EncodeMessages(dst, first, second)
	if err != nil {
		return err
	}
	// Normalize for playback headroom.
	peak := 0.0
	for _, v := range wave {
		if a := abs(v); a > peak {
			peak = a
		}
	}
	if peak > 0 {
		for i := range wave {
			wave[i] *= 0.9 / peak
		}
	}
	return audio.WriteWAVFile(path, wave, mo.SampleRate())
}

// DecodeFromWAV reads a WAV file and decodes the first packet in it.
func (mo *Modem) DecodeFromWAV(path string, self DeviceID) ([]Message, error) {
	samples, rate, err := audio.ReadWAVFile(path)
	if err != nil {
		return nil, err
	}
	if rate != mo.SampleRate() {
		return nil, fmt.Errorf("aquago: WAV sample rate %d, need %d", rate, mo.SampleRate())
	}
	msgs, ok := mo.DecodeMessages(samples, self)
	if !ok {
		return nil, fmt.Errorf("%w in %s", ErrDecodeFailed, path)
	}
	return msgs, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
