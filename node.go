package aquago

import (
	"context"
	"fmt"
	"sync"

	"aquago/internal/app"
	"aquago/internal/mac"
	"aquago/internal/phy"
)

// NodeOption customizes Join.
type NodeOption func(*nodeConfig)

type nodeConfig struct {
	device   Device
	motion   Motion
	trace    Trace
	clockS   float64
	clockSet bool
	track    MotionTrack
	trackSet bool
}

// WithNodeDevice selects the node's device model (default Galaxy S9).
// Every link the node participates in uses it on that node's end.
func WithNodeDevice(d Device) NodeOption {
	return func(c *nodeConfig) { c.device = d }
}

// WithNodeMotion applies a motion model to the node's *channel*
// (Static, SlowMotion, FastMotion): a link between two nodes varies —
// Doppler spread, fading rate — as fast as its faster-moving end. It
// does not move the node's position; pair it with WithMotionTrack (or
// Node.SetPosition) to make the geometry actually follow the motion
// the channel models.
func WithNodeMotion(m Motion) NodeOption {
	return func(c *nodeConfig) { c.motion = m }
}

// WithNodeTrace installs a per-node stage trace, overriding the
// network-wide trace for this node's sends.
func WithNodeTrace(t Trace) NodeOption {
	return func(c *nodeConfig) { c.trace = t }
}

// WithNodeClock pins the node's initial virtual clock (the time its
// first transmission becomes ready). By default each node draws a
// seed-derived stagger in [0, 1.5) s, modelling devices that power up
// at uncoordinated instants; without it, sample-synchronized nodes
// start transmitting inside each other's propagation delay, where
// carrier sense cannot help (the CSMA vulnerability window). Pin 0 on
// several nodes to force that window deliberately.
func WithNodeClock(atS float64) NodeOption {
	return func(c *nodeConfig) { c.clockS, c.clockSet = atS, true }
}

// interSendGapS is the virtual pause a node keeps after its own
// traffic before it next becomes ready (matches the Session clock
// advance).
const interSendGapS = 0.25

// Node is one device in a Network: a protocol stack (modem, band
// adaptation, messenger), a carrier-sense contender, and a position
// in the shared water. Obtain nodes from Network.Join.
//
// Send is safe to call from any goroutine; the network's
// conflict-graph scheduler orders interfering exchanges on the shared
// virtual timeline and runs non-interfering ones in parallel. Each
// node keeps its own virtual clock, so one node's traffic delays
// another only through the MAC (a busy channel extends the other's
// backoff), exactly as contention works on the air.
type Node struct {
	net *Network
	id  DeviceID
	// tone is the on-air address the modem's ID/ACK tones carry: id
	// mod 60, unique within carrier-sense audibility (Join enforces
	// it). For IDs below 60 the tone IS the ID.
	tone DeviceID
	idx  int
	// pos is the node's current position — no longer fixed at Join:
	// position epochs (motion.go) move it. Guarded by net.mu.
	pos   Position
	proto *phy.Protocol
	msgr  *app.Messenger
	cont  *mac.Contender
	trace Trace

	// sendMu serializes this node's Sends (one radio per device); the
	// scheduler handles cross-node ordering.
	sendMu sync.Mutex
	// relay is the hop context stamped onto stage events while a
	// relayed transfer's hop runs on this node (zero outside one).
	// Guarded by sendMu: it is only written at the top of sendWith and
	// only read by onStage, which runs inside the exchange.
	relay relayCtx

	// txq is the node's async transmit queue state (txq.go), created
	// at Join; the queue's own lock (net.tx.mu) guards it.
	txq *nodeTxq

	// track is the node's motion trajectory, evaluated by
	// Network.AdvanceMotion; hasTrack gates it (immutable after Join).
	track    MotionTrack
	hasTrack bool

	// Guarded by net.mu.
	clockS   float64
	airtimeS float64
	seq      int
	// adaptAirtimeS is the last committed attempt's actual on-air
	// duration — the adapted band's airtime. Under WithAdaptiveBackoff
	// it replaces the worst-case airtimeS as the MAC backoff quantum
	// (zero until the node's first commit).
	adaptAirtimeS float64
	// departed marks a node that called Leave: its queued work drained
	// with ErrNodeLeft, and new sends from or to it are refused.
	departed bool
}

// relayCtx locates one hop exchange inside a multi-hop (and possibly
// bulk) transfer; see the StageEvent relay fields. txID additionally
// tags the exchange's events with the async handle that scheduled it
// (zero for blocking sends).
type relayCtx struct {
	hop, pathHops     int
	bulkPkt, bulkPkts int
	txID              uint64
}

// newNodeMessenger wires a messenger with the network's retry budget.
func newNodeMessenger(proto *phy.Protocol, id DeviceID, retries int) *app.Messenger {
	ms := app.NewMessenger(proto, id)
	ms.Retries = retries
	return ms
}

// ID returns the node's device ID.
func (nd *Node) ID() DeviceID { return nd.id }

// Index returns the node's index in the shared medium (join order),
// the key used by ContentionResult.PerNode.
func (nd *Node) Index() int { return nd.idx }

// Position returns where the node currently sits (position epochs —
// SetPosition, Network.AdvanceMotion — move it).
func (nd *Node) Position() Position {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.pos
}

// ClockS returns the node's virtual clock: the time its next
// transmission becomes ready.
func (nd *Node) ClockS() float64 {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.clockS
}

// backoffQuantumS is the node's retransmission backoff quantum above
// the MAC: its last committed attempt's actual on-air duration (the
// adaptive quantum, see WithAdaptiveBackoff) when one exists, else
// the conservative full-band exchange airtime. The stream transport
// and the relay retry loops scale their virtual-clock retransmission
// floors by it.
func (nd *Node) backoffQuantumS() float64 {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	if nd.adaptAirtimeS > 0 {
		return nd.adaptAirtimeS
	}
	return nd.airtimeS
}

// AdvanceClock idles the node until atS on the shared virtual
// timeline: its next transmission becomes ready no earlier than atS.
// The clock never moves backward — a time at or before the current
// clock is a no-op — so callers can replay an offered-load schedule
// ("a message arrives at t") without tracking how far the node's own
// traffic already pushed it. Advancing an otherwise idle node also
// unpins the envelope and waveform logs, which are pruned at the
// minimum virtual time any node could still act at.
func (nd *Node) AdvanceClock(atS float64) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	if atS > nd.clockS {
		nd.clockS = atS
	}
}

// onStage routes protocol stage events to the node's trace, falling
// back to the network-wide trace, stamping the relay hop context on
// the way through. The node trace is serialized by the node's own
// send serialization; the shared network trace is serialized
// explicitly, since exchanges on non-interfering pairs run in
// parallel.
func (nd *Node) onStage(ev phy.StageEvent) {
	ev.Hop = nd.relay.hop
	ev.PathHops = nd.relay.pathHops
	ev.BulkPkt = nd.relay.bulkPkt
	ev.BulkPkts = nd.relay.bulkPkts
	ev.TxID = nd.relay.txID
	switch {
	case nd.trace != nil:
		nd.trace.OnStage(ev)
	case nd.net.cfg.trace != nil:
		nd.net.traceMu.Lock()
		//aqualint:callback-under-lock Trace documents OnStage as quick and never re-entering the session, node or network; traceMu is the leaf of the lock order and only serializes the shared trace across parallel exchanges
		nd.net.cfg.trace.OnStage(ev)
		nd.net.traceMu.Unlock()
	}
}

// MediumTo returns the two-direction medium between this node and
// dst, built from their geometry: Forward carries this node's voice,
// Backward the destination's. It is the bridge to the two-endpoint
// API — a Session can run over it directly, making SimulatedWater +
// Session the 2-node special case of a Network.
//
// The medium realizes the same channel Node.Send uses (same seeds)
// but owns fresh link state, so driving it concurrently with network
// traffic is safe; it bypasses the MAC and the envelope accounting.
func (nd *Node) MediumTo(dst DeviceID) (Medium, error) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	peer, err := n.peerLocked(nd, dst)
	if err != nil {
		return nil, err
	}
	return n.links.DetachedPair(nd.idx, peer.idx)
}

// peerLocked resolves a destination ID against the joined-node table
// with the taxonomy every pair lookup shares: ErrUnknownDevice for a
// device that never joined, ErrBadDeviceID for the node itself (a
// device cannot be its own peer — previously MediumTo(self) leaked a
// raw internal "no link" error instead). Callers hold n.mu.
func (n *Network) peerLocked(nd *Node, dst DeviceID) (*Node, error) {
	peer, ok := n.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDevice, dst)
	}
	if peer == nd {
		return nil, fmt.Errorf("%w: node %d cannot pair with itself", ErrBadDeviceID, dst)
	}
	if peer.departed {
		return nil, fmt.Errorf("%w: destination %d", ErrNodeLeft, dst)
	}
	return peer, nil
}

// Send delivers one or two codebook messages to dst through the full
// adaptive protocol, gated per attempt by the carrier-sense MAC on
// the network's shared virtual timeline. Each physical attempt is
// registered with the envelope medium, so CollisionStats accounts for
// it and other nodes' carrier sense hears it; under
// WaveformContention the attempt's stage waveforms additionally go on
// the air sample-for-sample, corrupting (and corrupted by) whatever
// overlaps them.
//
// Errors wrap the public taxonomy: ErrBadMessage (zero, >2 or unknown
// messages), ErrUnknownDevice, ErrChannelBusy (no MAC grant within
// the network's access deadline; errors.As a *ChannelBusyError for
// the busy-until time), ErrNoACK (all attempts went unacknowledged;
// the returned SendResult still describes them), or ctx's error when
// cancelled between attempts.
func (nd *Node) Send(ctx context.Context, dst DeviceID, msgs ...uint8) (SendResult, error) {
	if len(msgs) < 1 || len(msgs) > 2 {
		return SendResult{}, fmt.Errorf("%w: send carries 1 or 2 messages, got %d", ErrBadMessage, len(msgs))
	}
	first := msgs[0]
	second := uint8(NoMessage)
	if len(msgs) == 2 {
		second = msgs[1]
	}
	res, _, err := nd.sendWith(ctx, dst, relayCtx{}, 0, nil, first, second)
	return res, err
}

// sendWith is the full send machinery behind Send, the relay layer
// and the transmit daemon: rc stamps stage events with the hop/async
// context, notBeforeS floors the first attempt's ready time without
// advancing the node's clock (a queued job's arrival or a relayed
// packet's possession instant), raw (when non-nil) substitutes an
// arbitrary 16-bit payload for the codebook pair, and endS reports
// when the final on-air attempt left the air (the instant a
// store-and-forward relay can possess the payload).
func (nd *Node) sendWith(ctx context.Context, dst DeviceID, rc relayCtx, notBeforeS float64, raw *[2]byte, first, second uint8) (_ SendResult, endS float64, _ error) {
	// One radio per device: a node's own Sends are serial; the
	// conflict-graph scheduler (sched.go) orders it against the rest
	// of the network.
	nd.sendMu.Lock()
	defer nd.sendMu.Unlock()
	nd.relay = rc
	defer func() { nd.relay = relayCtx{} }()

	n := nd.net
	n.mu.Lock()
	if nd.departed {
		n.mu.Unlock()
		return SendResult{}, 0, fmt.Errorf("%w: source %d", ErrNodeLeft, nd.id)
	}
	peer, err := n.peerLocked(nd, dst)
	if err != nil {
		n.mu.Unlock()
		return SendResult{}, 0, err
	}
	var xmed phy.Medium
	if n.bank != nil {
		xmed = &waveSlot{net: n, a: nd.idx, b: peer.idx, aID: nd.id, bID: peer.id}
	} else {
		pair, err := n.links.Pair(nd.idx, peer.idx)
		if err != nil {
			n.mu.Unlock()
			return SendResult{}, 0, err
		}
		xmed = pair
	}
	peerTone := peer.tone
	clock := nd.clockS
	if notBeforeS > clock {
		clock = notBeforeS
	}
	n.mu.Unlock()

	// The gate runs once per attempt: wait out conflicting earlier
	// attempts, prune behind the minimum horizon, then carrier-sense
	// until the MAC grants the channel. The attempt goes on the air
	// after its exchange (OnAttempt) with its actual duration; the
	// ticket keeps conflicting attempts from slotting in between.
	var cur *ticket
	var lastStartS, lastDurS float64
	nd.msgr.Gate = func(readyS float64) (float64, error) {
		tk, start, err := n.beginAttempt(ctx, nd, peer.idx, readyS)
		if err != nil {
			return 0, err
		}
		cur = tk
		return start, nil
	}
	// After each exchange the band — and with it the true on-air
	// duration — is known; register the attempt in envelope mode so
	// collision accounting and other nodes' carrier sense see it.
	nd.msgr.OnAttempt = func(startS float64, res Result) {
		// Exchanges that aborted before the feedback round never put a
		// data section on the air; reserve the full-band estimate.
		durS := nd.airtimeS
		if res.FeedbackDecoded {
			durS = nd.proto.PacketAirtimeS(res.FeedbackBand)
		}
		n.commitAttempt(nd, cur, startS, durS)
		cur = nil
		lastStartS, lastDurS = startS, durS
	}
	defer func() {
		nd.msgr.Gate, nd.msgr.OnAttempt = nil, nil
		if cur != nil {
			// The exchange errored between grant and commit; release
			// the ticket so conflicting attempts are not stranded.
			n.abortAttempt(cur)
		}
	}()

	var res SendResult
	if raw != nil {
		res, err = nd.msgr.SendRaw(xmed, peerTone, *raw, clock)
	} else {
		res, err = nd.msgr.Send(xmed, peerTone, first, second, clock)
	}
	if res.Attempts > 0 && lastDurS > 0 {
		// Advance past the last attempt's actual airtime.
		endS = lastStartS + lastDurS
		n.mu.Lock()
		nd.clockS = endS + interSendGapS
		n.mu.Unlock()
	}
	return res, endS, err
}
