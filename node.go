package aquago

import (
	"context"
	"fmt"

	"aquago/internal/app"
	"aquago/internal/mac"
	"aquago/internal/phy"
)

// NodeOption customizes Join.
type NodeOption func(*nodeConfig)

type nodeConfig struct {
	device   Device
	motion   Motion
	trace    Trace
	clockS   float64
	clockSet bool
}

// WithNodeDevice selects the node's device model (default Galaxy S9).
// Every link the node participates in uses it on that node's end.
func WithNodeDevice(d Device) NodeOption {
	return func(c *nodeConfig) { c.device = d }
}

// WithNodeMotion applies a motion model to the node (Static,
// SlowMotion, FastMotion). A link between two nodes varies as fast as
// its faster-moving end.
func WithNodeMotion(m Motion) NodeOption {
	return func(c *nodeConfig) { c.motion = m }
}

// WithNodeTrace installs a per-node stage trace, overriding the
// network-wide trace for this node's sends.
func WithNodeTrace(t Trace) NodeOption {
	return func(c *nodeConfig) { c.trace = t }
}

// WithNodeClock pins the node's initial virtual clock (the time its
// first transmission becomes ready). By default each node draws a
// seed-derived stagger in [0, 1.5) s, modelling devices that power up
// at uncoordinated instants; without it, sample-synchronized nodes
// start transmitting inside each other's propagation delay, where
// carrier sense cannot help (the CSMA vulnerability window). Pin 0 on
// several nodes to force that window deliberately.
func WithNodeClock(atS float64) NodeOption {
	return func(c *nodeConfig) { c.clockS, c.clockSet = atS, true }
}

// interSendGapS is the virtual pause a node keeps after its own
// traffic before it next becomes ready (matches the Session clock
// advance).
const interSendGapS = 0.25

// Node is one device in a Network: a protocol stack (modem, band
// adaptation, messenger), a carrier-sense contender, and a position
// in the shared water. Obtain nodes from Network.Join.
//
// Send is safe to call from any goroutine; the network serializes
// exchanges on its shared virtual timeline. Each node keeps its own
// virtual clock, so one node's traffic delays another only through
// the MAC (a busy channel extends the other's backoff), exactly as
// contention works on the air.
type Node struct {
	net   *Network
	id    DeviceID
	idx   int
	pos   Position
	proto *phy.Protocol
	msgr  *app.Messenger
	cont  *mac.Contender
	trace Trace

	// Guarded by net.mu.
	clockS   float64
	airtimeS float64
	seq      int
}

// newNodeMessenger wires a messenger with the network's retry budget.
func newNodeMessenger(proto *phy.Protocol, id DeviceID, retries int) *app.Messenger {
	ms := app.NewMessenger(proto, id)
	ms.Retries = retries
	return ms
}

// ID returns the node's device ID.
func (nd *Node) ID() DeviceID { return nd.id }

// Index returns the node's index in the shared medium (join order),
// the key used by ContentionResult.PerNode.
func (nd *Node) Index() int { return nd.idx }

// Position returns where the node sits.
func (nd *Node) Position() Position { return nd.pos }

// ClockS returns the node's virtual clock: the time its next
// transmission becomes ready.
func (nd *Node) ClockS() float64 {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.clockS
}

// onStage routes protocol stage events to the node's trace, falling
// back to the network-wide trace.
func (nd *Node) onStage(ev phy.StageEvent) {
	switch {
	case nd.trace != nil:
		nd.trace.OnStage(ev)
	case nd.net.cfg.trace != nil:
		nd.net.cfg.trace.OnStage(ev)
	}
}

// MediumTo returns the two-direction medium between this node and
// dst, built from their geometry: Forward carries this node's voice,
// Backward the destination's. It is the bridge to the two-endpoint
// API — a Session can run over it directly, making SimulatedWater +
// Session the 2-node special case of a Network.
//
// The medium realizes the same channel Node.Send uses (same seeds)
// but owns fresh link state, so driving it concurrently with network
// traffic is safe; it bypasses the MAC and the envelope accounting.
func (nd *Node) MediumTo(dst DeviceID) (Medium, error) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	peer, ok := n.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownDevice, dst)
	}
	return n.links.DetachedPair(nd.idx, peer.idx)
}

// Send delivers one or two codebook messages to dst through the full
// adaptive protocol, gated per attempt by the carrier-sense MAC on
// the network's shared virtual timeline. Each physical attempt is
// registered with the envelope medium, so CollisionStats accounts for
// it and other nodes' carrier sense hears it.
//
// Errors wrap the public taxonomy: ErrBadMessage (zero, >2 or unknown
// messages), ErrUnknownDevice, ErrChannelBusy (no MAC grant within
// the network's access deadline), ErrNoACK (all attempts went
// unacknowledged; the returned SendResult still describes them), or
// ctx's error when cancelled between attempts.
func (nd *Node) Send(ctx context.Context, dst DeviceID, msgs ...uint8) (SendResult, error) {
	if len(msgs) < 1 || len(msgs) > 2 {
		return SendResult{}, fmt.Errorf("%w: send carries 1 or 2 messages, got %d", ErrBadMessage, len(msgs))
	}
	first := msgs[0]
	second := uint8(NoMessage)
	if len(msgs) == 2 {
		second = msgs[1]
	}

	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	peer, ok := n.nodes[dst]
	if !ok {
		return SendResult{}, fmt.Errorf("%w: %d", ErrUnknownDevice, dst)
	}
	if peer == nd {
		return SendResult{}, fmt.Errorf("%w: node %d cannot send to itself", ErrBadDeviceID, dst)
	}
	pair, err := n.links.Pair(nd.idx, peer.idx)
	if err != nil {
		return SendResult{}, err
	}

	// The gate runs once per attempt: prune the envelope log behind
	// the commit frontier, then carrier-sense until the MAC grants the
	// channel. The attempt goes on the air afterwards (OnAttempt),
	// with its actual duration — nothing else can run between the two
	// because the whole Send holds the network lock.
	var lastStartS, lastDurS float64
	nd.msgr.Gate = func(readyS float64) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// Never start behind the network's commit frontier (see the
		// frontierS field): later-arriving sends are pulled forward to
		// where they can hear everything already on the air.
		if readyS < n.frontierS {
			readyS = n.frontierS
		}
		n.med.Prune(n.frontierS, n.wcAirtimeS)
		start, granted := nd.cont.Acquire(func(tS float64) bool {
			return n.med.BusyAt(nd.idx, tS)
		}, readyS, nd.airtimeS, n.cfg.accessDeadlineS)
		if !granted {
			return 0, fmt.Errorf("%w: no access within %.0f virtual seconds",
				ErrChannelBusy, n.cfg.accessDeadlineS)
		}
		if f := start + mac.SenseIntervalS; f > n.frontierS {
			n.frontierS = f
		}
		return start, nil
	}
	// After each exchange the band — and with it the true on-air
	// duration — is known; register the attempt in envelope mode so
	// collision accounting and other nodes' carrier sense see it.
	nd.msgr.OnAttempt = func(startS float64, res Result) {
		// Exchanges that aborted before the feedback round never put a
		// data section on the air; reserve the full-band estimate.
		durS := nd.airtimeS
		if res.FeedbackDecoded {
			durS = nd.proto.PacketAirtimeS(res.FeedbackBand)
		}
		n.med.Transmit(nd.cont.Transmission(nd.idx, startS, durS, nd.seq))
		nd.seq++
		lastStartS, lastDurS = startS, durS
	}
	defer func() { nd.msgr.Gate, nd.msgr.OnAttempt = nil, nil }()

	res, err := nd.msgr.Send(pair, dst, first, second, nd.clockS)
	if res.Attempts > 0 && lastDurS > 0 {
		// Advance past the last attempt's actual airtime.
		nd.clockS = lastStartS + lastDurS + interSendGapS
	}
	return res, err
}
